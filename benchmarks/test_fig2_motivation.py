"""Figure 2 — the motivation example: TBS vs stage-aware scheduling.

Paper numbers: TBS-SJF average JCT 6.25 units (JCTs 19/2/2/2); a
stage-aware schedule achieves 5.5 units (JCTs 13/3/3/3).  The analytic
reconstruction reproduces both exactly; a simulator variant shows the
same direction under the flow-level model with a TBS scheduler vs the
stage-aware StageBytesSjf on the motivating job mix.
"""

import pytest

from repro.jobs import IdAllocator, chain_job, single_stage_job
from repro.schedulers.tbs import StageBytesSjf, TotalBytesSjf
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.theory.examples import (
    FIG2_PAPER_STAGE_AWARE_AVERAGE,
    FIG2_PAPER_TBS_AVERAGE,
    figure2_averages,
)

GB = 1e9


def _motivation_jobs(ids):
    """Figure 2's jobs: A = 10/1/1/1 GB chain; B, C, D = 2 GB singles.

    A's later stages each share a distinct host with one small job whose
    arrival lands just before that stage would run — the paper's point:
    under TBS, A (13 GB total) loses to every 2 GB job, so the delays
    *compound* across its stages, while a stage-aware scheduler sees each
    late stage of A as the 1 GB transfer it actually is.
    """
    job_a = chain_job(
        [
            [(0, 1, 10.0 * GB)],
            [(2, 6, 1.0 * GB)],
            [(3, 7, 1.0 * GB)],
            [(4, 8, 1.0 * GB)],
        ],
        ids=ids,
    )
    others = [
        single_stage_job([(2, 6, 2.0 * GB)], arrival_time=9.5, ids=ids),
        single_stage_job([(3, 7, 2.0 * GB)], arrival_time=12.4, ids=ids),
        single_stage_job([(4, 8, 2.0 * GB)], arrival_time=15.3, ids=ids),
    ]
    return [job_a, *others]


def _simulate_average(scheduler_factory):
    topo = BigSwitchTopology(num_hosts=10, link_capacity=1.0 * GB)
    result = simulate(topo, scheduler_factory(), _motivation_jobs(IdAllocator()))
    return result.average_jct()


def test_fig2_analytic(run_once):
    tbs_avg, stage_avg = run_once(figure2_averages)
    print(f"\nFIG2 (analytic)  TBS avg JCT        = {tbs_avg:5.2f} "
          f"(paper: {FIG2_PAPER_TBS_AVERAGE})")
    print(f"FIG2 (analytic)  stage-aware avg JCT = {stage_avg:5.2f} "
          f"(paper: {FIG2_PAPER_STAGE_AWARE_AVERAGE})")
    assert tbs_avg == pytest.approx(FIG2_PAPER_TBS_AVERAGE)
    assert stage_avg == pytest.approx(FIG2_PAPER_STAGE_AWARE_AVERAGE)


def test_fig2_simulated(run_once):
    def experiment():
        return (
            _simulate_average(TotalBytesSjf),
            _simulate_average(StageBytesSjf),
        )

    tbs_avg, stage_avg = run_once(experiment)
    print(f"\nFIG2 (simulated) TBS avg JCT        = {tbs_avg:6.2f}s")
    print(f"FIG2 (simulated) stage-aware avg JCT = {stage_avg:6.2f}s")
    # The paper's qualitative claim: stage-aware < TBS on this job mix.
    assert stage_avg < tbs_avg
