"""Dependency-graph coflow ordering, after Shafiee & Ghaderi.

Shafiee & Ghaderi (arXiv:2012.11702) schedule coflows whose release is
governed by a dependency graph: instead of ranking a coflow by its own
size alone (SEBF) or by its job's history (the TBS family), the priority
of a coflow folds in the *remaining critical path* of its stage DAG — the
work that must still complete after it before its job can finish.

The rendition here ranks every active coflow by::

    score(c) = remaining effective bottleneck of c
             + heaviest chain of downstream coflow bottlenecks

and serves ascending scores first.  A small coflow whose job is nearly
done (short downstream chain) beats a small coflow that merely *starts* a
deep job, which is exactly the dependency-awareness SEBF lacks; on
single-stage jobs the downstream term vanishes and the policy degrades to
SEBF.  Downstream chains use clairvoyant flow sizes (this is a
clairvoyant comparator, like SEBF/Varys) and are static per job, so they
are computed once at arrival and reused on the allocation hot path.
"""

from __future__ import annotations

from typing import Dict, List

from repro.jobs.flow import Flow
from repro.jobs.job import Job
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
)


class DependencyGraphScheduler(SchedulerPolicy):
    """Stage-DAG-aware coflow ordering (Shafiee–Ghaderi family)."""

    name = "sg-dag"

    def __init__(self, num_classes: int = MAX_SWITCH_CLASSES) -> None:
        super().__init__()
        self.num_classes = num_classes
        #: coflow id -> heaviest chain of strict-descendant bottlenecks
        self._downstream: Dict[int, float] = {}

    def on_job_arrival(self, job: Job, now: float) -> None:
        """Precompute each coflow's downstream critical-path weight.

        Walking the job DAG in reverse topological order, a coflow's
        downstream weight is the heaviest ``bottleneck + downstream``
        chain among its dependents (0 for roots).
        """
        order = job.dag.topological_order()
        for coflow_id in reversed(order):
            weight = 0.0
            for dependent_id in sorted(job.dag.dependents_of(coflow_id)):
                dependent = job.coflow(dependent_id)
                chain = dependent.max_flow_bytes + self._downstream[dependent_id]
                weight = max(weight, chain)
            self._downstream[coflow_id] = weight

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        bottleneck: Dict[int, float] = {}
        for flow in active_flows:
            coflow_id = flow.coflow_id
            previous = bottleneck.get(coflow_id)
            if previous is None or flow.remaining_bytes > previous:
                bottleneck[coflow_id] = flow.remaining_bytes
        ranked = sorted(
            bottleneck,
            key=lambda cid: (bottleneck[cid] + self._downstream.get(cid, 0.0), cid),
        )
        coflow_class = {
            coflow_id: min(rank, self.num_classes - 1)
            for rank, coflow_id in enumerate(ranked)
        }
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities={
                flow.flow_id: coflow_class[flow.coflow_id]
                for flow in active_flows
            },
            num_classes=self.num_classes,
        )
