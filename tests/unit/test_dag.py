"""Unit tests for the coflow dependency DAG."""

import pytest

from repro.errors import DagCycleError, InvalidJobError
from repro.jobs.dag import CoflowDag


class TestConstruction:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidJobError):
            CoflowDag([1, 1])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(InvalidJobError):
            CoflowDag([1, 2], [(1, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(DagCycleError):
            CoflowDag([1], [(1, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(DagCycleError):
            CoflowDag([1, 2, 3], [(1, 2), (2, 3), (3, 1)])


class TestStructure:
    def test_chain_stages(self):
        dag = CoflowDag([10, 20, 30], [(10, 20), (20, 30)])
        assert dag.leaves() == [10]
        assert dag.roots() == [30]
        assert dag.stage_of(10) == 1
        assert dag.stage_of(20) == 2
        assert dag.stage_of(30) == 3
        assert dag.num_stages == 3

    def test_diamond_stages(self):
        dag = CoflowDag([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert dag.stage_of(0) == 1
        assert dag.stage_of(1) == dag.stage_of(2) == 2
        assert dag.stage_of(3) == 3
        assert sorted(dag.coflows_in_stage(2)) == [1, 2]

    def test_stage_is_longest_dependency_path(self):
        # 0 -> 2 and 0 -> 1 -> 2: coflow 2 is stage 3, not 2.
        dag = CoflowDag([0, 1, 2], [(0, 1), (0, 2), (1, 2)])
        assert dag.stage_of(2) == 3

    def test_independent_coflows_all_stage_one(self):
        dag = CoflowDag([1, 2, 3])
        assert dag.num_stages == 1
        assert sorted(dag.leaves()) == [1, 2, 3]
        assert sorted(dag.roots()) == [1, 2, 3]

    def test_topological_order_respects_dependencies(self):
        dag = CoflowDag([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = dag.topological_order()
        for u, v in dag.edges():
            assert order.index(u) < order.index(v)

    def test_dependents_and_dependencies_are_inverse(self):
        dag = CoflowDag([0, 1, 2], [(0, 1), (0, 2)])
        assert dag.dependents_of(0) == {1, 2}
        assert dag.dependencies_of(1) == {0}
        assert dag.dependencies_of(0) == set()

    def test_contains_and_len(self):
        dag = CoflowDag([5, 6])
        assert 5 in dag and 6 in dag and 7 not in dag
        assert len(dag) == 2

    def test_returned_collections_are_copies(self):
        dag = CoflowDag([0, 1], [(0, 1)])
        dag.dependencies_of(1).clear()
        assert dag.dependencies_of(1) == {0}
