"""Unit tests for the Flow lifecycle and accounting."""

import pytest

from repro.errors import InvalidJobError
from repro.jobs.flow import Flow, FlowState


def make_flow(size=100.0):
    return Flow(flow_id=1, coflow_id=2, src=0, dst=1, size_bytes=size)


class TestFlowConstruction:
    def test_starts_pending_with_full_volume(self):
        flow = make_flow(64.0)
        assert flow.state is FlowState.PENDING
        assert flow.remaining_bytes == 64.0
        assert flow.bytes_sent == 0.0

    def test_rejects_non_positive_size(self):
        with pytest.raises(InvalidJobError):
            make_flow(0.0)
        with pytest.raises(InvalidJobError):
            make_flow(-5.0)

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidJobError):
            Flow(flow_id=1, coflow_id=2, src=3, dst=3, size_bytes=1.0)


class TestFlowLifecycle:
    def test_start_records_time_and_activates(self):
        flow = make_flow()
        flow.start(1.5)
        assert flow.state is FlowState.ACTIVE
        assert flow.start_time == 1.5

    def test_double_start_rejected(self):
        flow = make_flow()
        flow.start(0.0)
        with pytest.raises(InvalidJobError):
            flow.start(1.0)

    def test_advance_consumes_volume_at_rate(self):
        flow = make_flow(100.0)
        flow.start(0.0)
        flow.rate = 10.0
        flow.advance(3.0)
        assert flow.remaining_bytes == pytest.approx(70.0)
        assert flow.bytes_sent == pytest.approx(30.0)

    def test_advance_never_goes_negative(self):
        flow = make_flow(10.0)
        flow.start(0.0)
        flow.rate = 100.0
        flow.advance(1.0)
        assert flow.remaining_bytes == 0.0

    def test_advance_ignored_when_pending_or_done(self):
        flow = make_flow(10.0)
        flow.rate = 5.0
        flow.advance(1.0)  # still pending
        assert flow.remaining_bytes == 10.0
        flow.start(0.0)
        flow.finish(2.0)
        flow.advance(1.0)  # done
        assert flow.remaining_bytes == 0.0

    def test_finish_zeroes_volume_and_rate(self):
        flow = make_flow(10.0)
        flow.start(0.0)
        flow.rate = 5.0
        flow.finish(2.0)
        assert flow.state is FlowState.DONE
        assert flow.remaining_bytes == 0.0
        assert flow.rate == 0.0
        assert flow.finish_time == 2.0
        assert flow.duration() == 2.0

    def test_finish_requires_active(self):
        flow = make_flow()
        with pytest.raises(InvalidJobError):
            flow.finish(1.0)

    def test_duration_none_until_finished(self):
        flow = make_flow()
        assert flow.duration() is None
        flow.start(1.0)
        assert flow.duration() is None
