"""Baraat — decentralized FIFO with Limited Multiplexing (ref [3]).

Baraat schedules *tasks* (jobs) in arrival order: the oldest incomplete job
owns the highest priority class and later jobs queue behind it.  Its one
refinement is *limited multiplexing*: once the head job is detected to be
heavy (bytes sent beyond a threshold), the next job is allowed to share the
link rather than wait — heavy jobs stop consuming exclusive slots.

The paper's critique (§V): every stage of a job inherits the job's FIFO
rank, so "lower priority mice coflows queue behind larger higher priority
coflows in every job stage".
"""

from __future__ import annotations

from typing import Dict, List

from repro.jobs.flow import Flow
from repro.jobs.job import Job, JobState
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
)

#: Bytes after which a job counts as heavy (Baraat's multiplexing trigger).
#: 100 MB ~ the elephant threshold for datacenter traffic.
DEFAULT_HEAVY_BYTES = 100e6


class BaraatScheduler(SchedulerPolicy):
    """FIFO-LM: arrival-order priorities with limited multiplexing."""

    name = "baraat"

    def __init__(
        self,
        num_classes: int = MAX_SWITCH_CLASSES,
        heavy_bytes: float = DEFAULT_HEAVY_BYTES,
    ) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.heavy_bytes = heavy_bytes
        self._arrival_order: List[int] = []

    def on_job_arrival(self, job: Job, now: float) -> None:
        self._arrival_order.append(job.job_id)

    def _job_classes(self) -> Dict[int, int]:
        """FIFO rank -> priority class, with heavy jobs sharing their slot.

        Walking jobs in arrival order, each incomplete job gets the current
        rank as its class; a *heavy* job does not advance the rank, so the
        job behind it multiplexes onto the same class.
        """
        assert self.context is not None
        classes: Dict[int, int] = {}
        rank = 0
        for job_id in self._arrival_order:
            job = self.context.job(job_id)
            if job.state is not JobState.RUNNING:
                continue
            classes[job_id] = min(rank, self.num_classes - 1)
            if job.bytes_sent < self.heavy_bytes:
                rank += 1
        return classes

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        assert self.context is not None
        job_classes = self._job_classes()
        priorities: Dict[int, int] = {}
        for flow in active_flows:
            job_id = self.context.coflow(flow.coflow_id).job_id
            priorities[flow.flow_id] = job_classes.get(job_id, self.num_classes - 1)
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities=priorities,
            num_classes=self.num_classes,
        )
