"""ECMP route-decision cache: hits, invalidation, and repair re-landing.

The router memoizes (a) the immutable perfect-fabric route choice per
``(src, dst, selector mod choices)`` and (b) the per-pair alive-candidate
lists, which are valid only for one link-state generation.  Because the
downed-link set is shared live with the fault injector, the runtime must
call :meth:`EcmpRouter.invalidate_routes` on every fault *and* every
repair — this suite locks in both the caching and the invalidation
contract, including end-to-end under a chaos timeline.
"""

from __future__ import annotations

from repro.jobs.flow import Flow
from repro.schedulers.registry import make_scheduler
from repro.simulator.faults import FaultProfile, LinkFault, derive_fault_seed
from repro.simulator.routing.ecmp import EcmpRouter
from repro.simulator.runtime import simulate
from repro.simulator.topology.fattree import FatTreeTopology


def _flow(flow_id, src, dst):
    return Flow(flow_id=flow_id, coflow_id=1, src=src, dst=dst, size_bytes=100)


class _CountingTopology:
    """Wraps a topology, counting route/num_route_choices calls."""

    def __init__(self, inner):
        self._inner = inner
        self.route_calls = 0
        self.choices_calls = 0

    def route(self, src, dst, selector):
        self.route_calls += 1
        return self._inner.route(src, dst, selector)

    def num_route_choices(self, src, dst):
        self.choices_calls += 1
        return self._inner.num_route_choices(src, dst)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestPerfectFabricMemo:
    def test_repeat_decisions_served_from_cache(self):
        counting = _CountingTopology(FatTreeTopology(k=4))
        router = EcmpRouter(counting)
        flow = _flow(1, 0, 9)
        first = router.route_flow(flow)
        calls_after_first = counting.route_calls
        assert router.route_flow(flow) == first
        assert router.route_flow(flow) == first
        assert counting.route_calls == calls_after_first
        # num_route_choices is memoized per pair as well.
        assert counting.choices_calls == 1

    def test_distinct_selectors_get_distinct_cache_rows(self):
        topology = FatTreeTopology(k=4)
        cached = EcmpRouter(topology)
        plain = EcmpRouter(topology)
        # Inter-pod pairs have k^2/4 = 4 candidates; enough flows cover
        # several selector classes and must match an uncached router.
        for flow_id in range(40):
            flow = _flow(flow_id, 0, 9)
            assert cached.route_flow(flow) == plain.route_flow(flow)

    def test_memo_survives_fault_generations(self):
        """Static topology routes never expire: after a full fault/repair
        cycle, the perfect-fabric fast path may reuse the old memo."""
        counting = _CountingTopology(FatTreeTopology(k=4))
        router = EcmpRouter(counting)
        flow = _flow(3, 0, 9)
        original = router.route_flow(flow)
        calls = counting.route_calls
        downed = set()
        router.set_downed_links(downed)
        downed.add(original[1])
        router.invalidate_routes()
        assert router.route_flow(flow) != original
        downed.clear()
        router.set_downed_links(None)
        calls_before_final = counting.route_calls
        assert router.route_flow(flow) == original
        # The final decision came from the memo, not a fresh computation.
        assert counting.route_calls == calls_before_final


class TestInvalidation:
    def test_set_downed_links_bumps_generation(self):
        router = EcmpRouter(FatTreeTopology(k=4))
        generation = router.links_generation
        router.set_downed_links(set())
        assert router.links_generation == generation + 1

    def test_stale_alive_cache_without_invalidate(self):
        """The live downed-link set mutates invisibly: the alive cache
        *must* be stale until invalidate_routes is called.  This pins the
        contract the runtime relies on (and would silently break if the
        cache ever 'helpfully' re-checked the set itself)."""
        router = EcmpRouter(FatTreeTopology(k=4))
        downed = set()
        router.set_downed_links(downed)
        flow = _flow(5, 0, 9)
        before = router.alive_routes(flow.src, flow.dst)
        downed.add(before[0][1])  # mutate the shared set, no invalidate
        assert router.alive_routes(flow.src, flow.dst) == before  # stale
        router.invalidate_routes()
        refreshed = router.alive_routes(flow.src, flow.dst)
        assert refreshed != before
        assert all(before[0][1] not in route for route in refreshed)

    def test_withdraw_and_rehash_round_trip(self):
        """Fault -> reroute -> repair -> original hash landing restored."""
        router = EcmpRouter(FatTreeTopology(k=4))
        downed = set()
        router.set_downed_links(downed)
        flow = _flow(7, 0, 9)
        original = router.route_flow(flow)
        # Down a middle link of the chosen path (never the host uplink).
        downed.add(original[1])
        router.invalidate_routes()
        rerouted = router.route_flow(flow)
        assert original[1] not in rerouted
        # Repair: the downed set empties; after invalidation the flow
        # must land exactly where it did before the fault.
        downed.clear()
        router.invalidate_routes()
        assert router.route_flow(flow) == original


class TestChaosEndToEnd:
    def test_runtime_invalidates_on_fault_and_repair(self):
        """Under a scheduled link flap the runtime must bump the router
        generation at least twice (the fault and the repair), and the
        run must complete — proving no stale route kept a flow parked."""
        topology = FatTreeTopology(k=4)
        from repro.experiments.common import ScenarioConfig, build_jobs

        config = ScenarioConfig(
            name="ecmp-cache", structure="fb-tao", num_jobs=6,
            fattree_k=4, seed=13,
        )
        jobs = build_jobs(config, topology.num_hosts)
        cable = next(
            link for link in topology.links if link.src_node.startswith("h")
        )
        profile = FaultProfile(
            name="one-flap",
            specs=(
                LinkFault(
                    src_node=cable.src_node, dst_node=cable.dst_node,
                    at=0.001, duration=0.01,
                ),
            ),
            seed=derive_fault_seed(5, "one-flap"),
        )
        router = EcmpRouter(topology)
        generation_before = router.links_generation
        result = simulate(
            topology, make_scheduler("gurita"), jobs,
            router=router, faults=profile,
        )
        assert all(job.completion_time() is not None for job in result.jobs)
        assert result.fault_stats is not None
        assert result.fault_stats.link_down_events > 0
        assert result.fault_stats.repairs_applied > 0
        # set_downed_links (wiring) + the fault + the repair >= 3 bumps.
        assert router.links_generation >= generation_before + 3
