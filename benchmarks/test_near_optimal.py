"""Near-optimality — quantifying the paper's title claim.

Two anchors:

1. **Exact, small instances** — on random FFS-MJ instances small enough to
   brute-force, an LBEF-style static order (ascending blocking effect) is
   compared against the optimal and worst priority orders.  The bench
   prints the mean gap; LBEF should sit near the optimum.
2. **Physical lower bounds, full simulation** — per-job JCT divided by its
   critical-path/port lower bound (no scheduler can beat 1.0).  Gurita's
   mean gap is printed next to PFS's; lower is better.
"""

import random

from _util import bench_jobs

from repro.experiments.common import ScenarioConfig, build_jobs
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.simulator.topology.fattree import FatTreeTopology
from repro.simulator.topology.links import TEN_GBPS
from repro.theory.exact import brute_force_best, brute_force_worst, schedule_by_order
from repro.theory.ffs import FfsCoflow, FfsInstance, FfsJob, FfsOperation
from repro.theory.lowerbound import mean_optimality_gap


def random_instance(rng: random.Random, num_jobs: int = 5) -> FfsInstance:
    """A random single-layer FFS-MJ instance with 2-machine parallelism."""
    jobs = []
    for job_id in range(num_jobs):
        coflows = []
        depth = rng.randint(1, 3)
        for stage in range(depth):
            operations = tuple(
                FfsOperation(rng.uniform(0.5, 8.0), layer=rng.randint(0, 1))
                for _ in range(rng.randint(1, 3))
            )
            coflows.append(
                FfsCoflow(
                    coflow_id=stage,
                    operations=operations,
                    depends_on=(stage - 1,) if stage else (),
                )
            )
        jobs.append(FfsJob(job_id=job_id, coflows=tuple(coflows)))
    return FfsInstance(jobs=tuple(jobs), machines_per_layer={0: 2, 1: 2})


def lbef_order(instance: FfsInstance):
    """Static LBEF: ascending aggregate blocking effect across stages.

    Per-stage blocking effect = width x largest operation (the eq.-2 core
    with gamma and beta constant across comparisons); the job's score sums
    its stages — jobs least likely to delay others go first.
    """
    def score(job: FfsJob) -> float:
        return sum(
            len(coflow.operations) * coflow.span for coflow in job.coflows
        )

    return tuple(
        job.job_id for job in sorted(instance.jobs, key=lambda j: (score(j), j.job_id))
    )


def test_lbef_near_optimal_on_small_instances(run_once):
    def experiment():
        rng = random.Random(1234)
        ratios = []
        for _ in range(30):
            instance = random_instance(rng)
            best = brute_force_best(instance)
            worst = brute_force_worst(instance)
            lbef = schedule_by_order(instance, lbef_order(instance))
            spread = max(worst.total_jct - best.total_jct, 1e-9)
            ratios.append((lbef.total_jct - best.total_jct) / spread)
        return ratios

    ratios = run_once(experiment)
    mean_ratio = sum(ratios) / len(ratios)
    print(
        f"\nNEAR-OPTIMAL  LBEF position between optimal (0.0) and worst "
        f"(1.0): mean {mean_ratio:.3f}, worst case {max(ratios):.3f} "
        f"over {len(ratios)} random FFS-MJ instances"
    )
    # LBEF lands in the optimal quarter of the spread on average.
    assert mean_ratio < 0.25
    exact_hits = sum(1 for r in ratios if r < 1e-9)
    print(f"NEAR-OPTIMAL  exactly optimal on {exact_hits}/{len(ratios)} instances")
    assert exact_hits >= len(ratios) // 5


def test_simulation_gap_to_physical_bound(run_once):
    def experiment():
        gaps = {}
        for name in ("gurita", "pfs"):
            topology = FatTreeTopology(k=8)
            config = ScenarioConfig(num_jobs=bench_jobs(40), seed=21)
            jobs = build_jobs(config, topology.num_hosts)
            result = simulate(topology, make_scheduler(name), jobs)
            gaps[name] = mean_optimality_gap(result, TEN_GBPS)
        return gaps

    gaps = run_once(experiment)
    print(
        f"\nNEAR-OPTIMAL  mean JCT / lower-bound: "
        f"gurita {gaps['gurita']:.2f}x, pfs {gaps['pfs']:.2f}x "
        "(1.0 = physically optimal)"
    )
    assert gaps["gurita"] >= 1.0 - 1e-9
    # Gurita sits closer to the physical optimum than fair sharing.
    assert gaps["gurita"] <= gaps["pfs"] * 1.02
