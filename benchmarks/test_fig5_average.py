"""Figure 5 — average improvement across four scenarios.

Paper: Gurita outperforms PFS by up to 2x and Baraat by up to 1.8x (and
Stream by up to 1.5x) on average in the trace-driven and bursty scenarios
with both DAG structures, while matching centralized Aalo (within ~5%)
without its global view.

The bench prints one row per scenario (FB-t, CD-t, FB-b, CD-b), each an
improvement factor of Gurita over the named comparator — Figure 5's bars.
"""

from _util import bench_cache_dir, bench_jobs, bench_parallel

from repro.experiments.figures import figure5_configs, run_figure_configs
from repro.metrics.report import format_improvement_row


def test_fig5_average_improvement(run_once):
    configs = figure5_configs(num_jobs=bench_jobs(40))

    def experiment():
        # The four scenario columns fan out across REPRO_BENCH_PARALLEL
        # workers; the series is bit-identical to the serial run.
        outcomes, _report = run_figure_configs(
            configs,
            parallel=bench_parallel(),
            cache_dir=bench_cache_dir(),
        )
        return outcomes

    outcomes = run_once(experiment)
    print("\nFIG5  improvement of Gurita (>1 = Gurita faster):")
    rows = {}
    for name, outcome in outcomes.items():
        rows[name] = outcome.improvements_over("gurita")
        print(format_improvement_row(name, rows[name]))

    for name, factors in rows.items():
        # Decentralized TBS comparators: Gurita must win on average in
        # every scenario; the paper's factors (2x, 1.8x, 1.5x) are upper
        # ends, so assert the direction with slack for the smaller scale.
        assert factors["pfs"] > 1.0, (name, factors)
        assert factors["baraat"] > 1.0, (name, factors)
        # Centralized Aalo with a perfect global view: parity within 15%.
        assert factors["aalo"] > 0.85, (name, factors)
        # Stream: parity or better everywhere.
        assert factors["stream"] > 0.9, (name, factors)
