"""SIM301-SIM305: dimensional-consistency rules (``--units``).

Descriptors and message templates for the unit half of the fourth
simlint layer.  The inference engine itself lives in
:mod:`tools.simlint.units`; this module deliberately has no dependency
on it so the CLI can list rules without building a project.

The rules police the invariant the gap harness silently relies on: every
scalar flowing between the lower-bound theory, the max-min allocator,
and the runtime is either ``Seconds``, ``Bytes``, ``BytesPerSec`` or a
dimensionless ``Fraction`` — and arithmetic moves between those kinds
only along the physical derivation table (``Bytes / Seconds →
BytesPerSec`` and friends).  A bytes-vs-seconds mixup corrupts measured
JCTs and lower bounds *together*, which is exactly the failure class the
fingerprint goldens cannot catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class UnitRule:
    """Descriptor of one dimensional-analysis rule."""

    code: str
    name: str
    description: str


UNIT_RULES: Tuple[UnitRule, ...] = (
    UnitRule(
        code="SIM301",
        name="mixed-unit-arithmetic",
        description=(
            "Addition or subtraction mixes two different physical units "
            "(e.g. Seconds + Bytes), or a value contradicts its declared "
            "unit annotation / unit[...] pragma. Units must agree exactly "
            "for +/-; convert through the derivation table first "
            "(volume / rate, rate * time)."
        ),
    ),
    UnitRule(
        code="SIM302",
        name="cross-unit-comparison",
        description=(
            "A comparison mixes two different physical units, or compares "
            "two Seconds values with ==/!= outside the blessed "
            "repro.simulator.timecmp helpers. Cross-unit ordering is "
            "meaningless; float-time equality must go through "
            "times_close/time_before."
        ),
    ),
    UnitRule(
        code="SIM303",
        name="unit-mismatched-sink",
        description=(
            "A value of one unit reaches a parameter or return annotated "
            "with another — classically a Bytes volume flowing into a "
            "Seconds-typed sink without the rate division. Divide by a "
            "BytesPerSec rate (or fix the annotation) so the dimensions "
            "line up."
        ),
    ),
    UnitRule(
        code="SIM304",
        name="unitless-literal-sink",
        description=(
            "A bare numeric literal (other than 0/±1) is passed directly "
            "into a unit-annotated parameter. Name the constant with a "
            "unit-annotated binding (or assert the unit in place with "
            "'# simlint: unit[...]') so the quantity's dimension is "
            "checkable."
        ),
    ),
    UnitRule(
        code="SIM305",
        name="unit-erasure",
        description=(
            "A value read back from a dict/JSON round-trip (json.load/"
            "loads and subscripts of it) reaches a unit-annotated sink "
            "with its unit erased. Recover the unit at the read site with "
            "'# simlint: unit[...]' so the dimension survives "
            "serialization."
        ),
    ),
)

UNIT_RULES_BY_CODE: Dict[str, UnitRule] = {rule.code: rule for rule in UNIT_RULES}


# ----------------------------------------------------------------------
# Message templates (the engine fills in inferred units and call targets)
# ----------------------------------------------------------------------
def msg_mixed_arith(op: str, left: str, right: str) -> str:
    return (
        f"mixed-unit arithmetic: {left} {op} {right} — convert through a "
        "rate (Bytes / BytesPerSec -> Seconds) instead of mixing units"
    )


def msg_annotation_conflict(declared: str, inferred: str) -> str:
    return (
        f"value inferred as {inferred} contradicts its declared unit "
        f"{declared}"
    )


def msg_cross_compare(left: str, right: str) -> str:
    return (
        f"cross-unit comparison: {left} vs {right} — comparing different "
        "physical units is meaningless"
    )


def msg_time_equality() -> str:
    return (
        "Seconds compared with ==/!= outside repro.simulator.timecmp — "
        "use times_close/time_before"
    )


def msg_sink_mismatch(arg_unit: str, param: str, param_unit: str, target: str) -> str:
    hint = (
        " (missing rate division: divide the volume by a BytesPerSec rate)"
        if (arg_unit, param_unit) == ("Bytes", "Seconds")
        else ""
    )
    return (
        f"{arg_unit} value passed to {param_unit}-typed parameter "
        f"{param!r} of {target}{hint}"
    )


def msg_return_mismatch(inferred: str, declared: str, target: str) -> str:
    return (
        f"{inferred} value returned from {target}, which is annotated to "
        f"return {declared}"
    )


def msg_unitless_literal(literal: str, param: str, param_unit: str, target: str) -> str:
    return (
        f"unit-less literal {literal} passed to {param_unit}-typed "
        f"parameter {param!r} of {target} — bind it to a unit-annotated "
        "name or assert with '# simlint: unit[...]'"
    )


def msg_erased(param: str, param_unit: str, target: str) -> str:
    return (
        f"unit erased by a dict/JSON round-trip reaches {param_unit}-typed "
        f"parameter {param!r} of {target} — recover it with "
        "'# simlint: unit[...]' at the read site"
    )
