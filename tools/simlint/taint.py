"""Interprocedural taint tracking for ``simlint --deep``.

The analysis marks values produced by *nondeterminism sources* and
follows them through assignments, returns, call arguments, instance
attributes, and module globals until they reach a *determinism sink*
(defined in :mod:`tools.simlint.dataflow`).  Five source classes map to
five rule codes:

========  ===========================================================
SIM101    wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now``, …)
SIM102    unseeded randomness (module-level ``random.*``,
          ``random.Random()`` with no seed, unseeded ``numpy.random``)
SIM103    process environment (``os.environ``, ``os.getenv``)
SIM104    ``hash()`` / ``id()`` (randomized per process / allocation
          dependent)
SIM105    unordered-collection iteration order (``set`` iteration,
          ``list(set)``, ``set.pop()``, ``dict.keys()`` without
          ``sorted``)
========  ===========================================================

Mechanics: each function gets a summary — the taints its return value
always carries, plus which *parameters* flow to the return — computed to
a fixed point over the whole project (context-insensitive: a parameter's
taint is the union over all call sites).  Instance-attribute and
module-global taints are tracked flow-insensitively.  ``sorted()`` and
order-insensitive reductions (``sum``, ``len``, ``min``, ``max``, …)
kill SIM105 taint; everything else unions its operands.

The engine deliberately over-approximates (a tainted operand taints the
whole expression) — the JSON suppression baseline absorbs residual
false positives, and pragmas document intentional flows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from tools.simlint.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
)

# ----------------------------------------------------------------------
# Taint domain
# ----------------------------------------------------------------------
KIND_WALL_CLOCK = "wall-clock"
KIND_RNG = "unseeded-rng"
KIND_ENVIRON = "environ"
KIND_HASH_ID = "hash-id"
KIND_SET_ORDER = "set-order"
KIND_PARAM = "param"  #: symbolic marker, never reported

#: source kind -> deep rule code
SOURCE_RULES: Dict[str, str] = {
    KIND_WALL_CLOCK: "SIM101",
    KIND_RNG: "SIM102",
    KIND_ENVIRON: "SIM103",
    KIND_HASH_ID: "SIM104",
    KIND_SET_ORDER: "SIM105",
}

#: source kind -> human description used in finding messages
SOURCE_LABELS: Dict[str, str] = {
    KIND_WALL_CLOCK: "wall-clock",
    KIND_RNG: "unseeded-RNG",
    KIND_ENVIRON: "environment-variable",
    KIND_HASH_ID: "hash()/id()",
    KIND_SET_ORDER: "set-iteration-order",
}


@dataclass(frozen=True)
class Taint:
    """One taint mark: what kind of nondeterminism, introduced where."""

    kind: str
    origin: str  #: e.g. ``"time.time()"`` or ``"os.environ['X']"``
    path: str
    line: int
    index: int = -1  #: parameter index when ``kind == KIND_PARAM``


TaintSet = FrozenSet[Taint]
EMPTY: TaintSet = frozenset()


def concrete(taints: TaintSet) -> TaintSet:
    """Drop symbolic parameter markers, keeping reportable taints."""
    return frozenset(t for t in taints if t.kind != KIND_PARAM)


def drop_order(taints: TaintSet) -> TaintSet:
    """What survives an order-insensitive operation (``sorted``, ``sum``)."""
    return frozenset(t for t in taints if t.kind != KIND_SET_ORDER)


# ----------------------------------------------------------------------
# Source tables
# ----------------------------------------------------------------------
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module functions that are fine (seeded construction).
RANDOM_ALLOWED = frozenset({"random.Random"})

ENV_CALLS = frozenset({"os.getenv", "os.environ.get", "os.environ.setdefault"})
ENV_READS = frozenset({"os.environ"})

HASH_ID_CALLS = frozenset({"builtins.hash", "builtins.id"})

#: builtins whose result does not depend on input ordering
ORDER_KILLERS = frozenset(
    {
        "builtins.sorted",
        "builtins.len",
        "builtins.sum",
        "builtins.min",
        "builtins.max",
        "builtins.any",
        "builtins.all",
        "builtins.frozenset",
        "builtins.set",
    }
)

#: builtins that materialize an iteration order from their argument
ORDER_MATERIALIZERS = frozenset(
    {"builtins.list", "builtins.tuple", "builtins.iter", "builtins.next"}
)


def source_for_call(
    resolved: Optional[str], node: ast.Call, path: str
) -> Optional[Taint]:
    """The taint a call introduces, if its target is a source."""
    if resolved is None:
        return None
    line = getattr(node, "lineno", 1)
    if resolved in WALL_CLOCK_CALLS:
        return Taint(KIND_WALL_CLOCK, f"{resolved}()", path, line)
    if resolved in ENV_CALLS:
        return Taint(KIND_ENVIRON, f"{resolved}()", path, line)
    if resolved in HASH_ID_CALLS:
        name = resolved.rsplit(".", 1)[-1]
        return Taint(KIND_HASH_ID, f"{name}()", path, line)
    if resolved.startswith("random."):
        if resolved == "random.Random":
            if not node.args and not node.keywords:
                return Taint(KIND_RNG, "random.Random() without a seed", path, line)
            return None
        if resolved == "random.SystemRandom":
            return Taint(KIND_RNG, "random.SystemRandom()", path, line)
        if resolved not in RANDOM_ALLOWED:
            return Taint(KIND_RNG, f"{resolved}()", path, line)
    if resolved.startswith("numpy.random."):
        if resolved == "numpy.random.default_rng" and (node.args or node.keywords):
            return None
        return Taint(KIND_RNG, f"{resolved}()", path, line)
    return None


# ----------------------------------------------------------------------
# Function summaries
# ----------------------------------------------------------------------
@dataclass
class FunctionSummary:
    """What one function does with taint, independent of call site."""

    func: FunctionInfo
    #: taints the return value always carries (concrete only)
    return_taints: Set[Taint] = field(default_factory=set)
    #: parameter indices whose taint flows into the return value
    return_params: Set[int] = field(default_factory=set)
    #: concrete taints observed flowing *into* each parameter, unioned
    #: over every call site in the project
    param_taints: Dict[int, Set[Taint]] = field(default_factory=dict)

    def seed_param(self, index: int, taints: TaintSet) -> bool:
        bucket = self.param_taints.setdefault(index, set())
        before = len(bucket)
        bucket.update(concrete(taints))
        return len(bucket) != before


#: Callback invoked on every call expression during the reporting pass:
#: (call node, resolved target, enclosing function, per-argument taints).
CallObserver = Callable[
    [ast.Call, Optional[str], FunctionInfo, "CallArgs"], None
]


@dataclass
class CallArgs:
    """Taint of each argument of one call, positionally and by keyword."""

    positional: List[TaintSet]
    keywords: Dict[str, TaintSet]
    receiver: TaintSet = EMPTY

    def all_taints(self) -> TaintSet:
        out: Set[Taint] = set()
        for t in self.positional:
            out |= t
        for t in self.keywords.values():
            out |= t
        return frozenset(out)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class TaintEngine:
    """Project-wide fixed-point taint propagation."""

    #: fixpoint safety valve; realistic projects converge in < 6 rounds
    MAX_ROUNDS = 12

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, FunctionSummary] = {
            name: FunctionSummary(func=info)
            for name, info in project.functions.items()
        }
        #: (class full name, attribute) -> taints
        self.field_taints: Dict[Tuple[str, str], Set[Taint]] = {}
        #: (module name, global name) -> taints
        self.global_taints: Dict[Tuple[str, str], Set[Taint]] = {}
        self._changed = False

    # -- fixpoint ------------------------------------------------------
    def run(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            self._changed = False
            for mod in self.project.modules.values():
                self._analyze_module_body(mod)
            for summary in self.summaries.values():
                self._analyze_function(summary, observer=None)
            if not self._changed:
                break

    def report(self, observer: CallObserver) -> None:
        """One extra pass over every function, streaming calls + taints."""
        for summary in self.summaries.values():
            self._analyze_function(summary, observer=observer)

    # -- per-scope analysis --------------------------------------------
    def _analyze_module_body(self, mod: ModuleInfo) -> None:
        walker = _ScopeWalker(self, mod, func=None, cls=None, observer=None)
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            walker.visit_stmt(stmt)
        for name, taints in walker.locals_taint.items():
            if name in mod.global_names or name in mod.mutable_globals:
                self._merge_global(mod.name, name, taints)

    def _analyze_function(
        self, summary: FunctionSummary, observer: Optional[CallObserver]
    ) -> None:
        func = summary.func
        mod = self.project.module_for_function(func)
        cls = self.project.class_for_function(func)
        walker = _ScopeWalker(self, mod, func=func, cls=cls, observer=observer)
        # Seed parameters: symbolic marker + everything call sites sent.
        for index, name in enumerate(func.params):
            seeded: Set[Taint] = {
                Taint(KIND_PARAM, name, mod.path, func.lineno, index=index)
            }
            seeded |= summary.param_taints.get(index, set())
            walker.locals_taint[name] = frozenset(seeded)
        # Annotated parameters give the resolver receiver types.
        args_node = func.node.args  # type: ignore[attr-defined]
        for arg in [*getattr(args_node, "posonlyargs", []), *args_node.args,
                    *args_node.kwonlyargs]:
            if arg.annotation is not None:
                parts = dotted_name(arg.annotation)
                if parts is not None:
                    resolved = self.project.resolve_dotted(".".join(parts), mod)
                    if resolved is not None and resolved in self.project.classes:
                        walker.local_types[arg.arg] = resolved
        # Two passes so taints assigned late in a loop body reach uses
        # earlier in the same body.
        for _ in range(2):
            for stmt in func.node.body:  # type: ignore[attr-defined]
                walker.visit_stmt(stmt)
        # Fold return information into the summary.
        ret_concrete = concrete(walker.return_taints)
        ret_params = {
            t.index for t in walker.return_taints if t.kind == KIND_PARAM
        }
        if not ret_concrete <= summary.return_taints:
            summary.return_taints |= ret_concrete
            self._changed = True
        if not ret_params <= summary.return_params:
            summary.return_params |= ret_params
            self._changed = True

    # -- shared state merges -------------------------------------------
    def _merge_field(self, cls_full: str, attr: str, taints: TaintSet) -> None:
        bucket = self.field_taints.setdefault((cls_full, attr), set())
        before = len(bucket)
        bucket.update(concrete(taints))
        if len(bucket) != before:
            self._changed = True

    def _merge_global(self, module: str, name: str, taints: TaintSet) -> None:
        bucket = self.global_taints.setdefault((module, name), set())
        before = len(bucket)
        bucket.update(concrete(taints))
        if len(bucket) != before:
            self._changed = True

    def _merge_param(self, callee: str, index: int, taints: TaintSet) -> None:
        summary = self.summaries.get(callee)
        if summary is None:
            return
        if summary.seed_param(index, taints):
            self._changed = True


class _ScopeWalker:
    """Intraprocedural statement/expression walk for one scope."""

    def __init__(
        self,
        engine: TaintEngine,
        mod: ModuleInfo,
        func: Optional[FunctionInfo],
        cls: Optional[ClassInfo],
        observer: Optional[CallObserver],
    ) -> None:
        self.engine = engine
        self.project = engine.project
        self.mod = mod
        self.func = func
        self.cls = cls
        self.observer = observer
        self.locals_taint: Dict[str, TaintSet] = {}
        self.local_types: Dict[str, str] = {}
        self.set_locals: Set[str] = set()
        self.return_taints: Set[Taint] = set()

    # -- statements ----------------------------------------------------
    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taints |= self.eval(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, taints, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value), stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value) | self.eval(stmt.target)
            self.assign(stmt.target, taints, stmt.value)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self.eval(stmt.iter)
            if self.is_set_like(stmt.iter):
                taints |= {
                    Taint(
                        KIND_SET_ORDER,
                        "iteration over an unordered collection",
                        self.mod.path,
                        stmt.iter.lineno,
                    )
                }
            self.assign(stmt.target, taints, stmt.iter)
            for sub in stmt.body + stmt.orelse:
                self.visit_stmt(sub)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.eval(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self.visit_stmt(sub)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taints, item.context_expr)
            for sub in stmt.body:
                self.visit_stmt(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self.visit_stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self.visit_stmt(sub)
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.eval(value)
            return
        # Import / Pass / Break / Continue / Global / Nonlocal / Delete: no flow.

    def assign(self, target: ast.expr, taints: TaintSet, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.locals_taint[target.id] = taints
            if self.is_set_like(value):
                self.set_locals.add(target.id)
            else:
                self.set_locals.discard(target.id)
            ctor = self._constructed_type(value)
            if ctor is not None:
                self.local_types[target.id] = ctor
            elif target.id in self.local_types:
                del self.local_types[target.id]
            # Writes to module globals from the module body walker.
            if self.func is None and (
                target.id in self.mod.global_names
                or target.id in self.mod.mutable_globals
            ):
                self.engine._merge_global(self.mod.name, target.id, taints)
        elif isinstance(target, ast.Attribute):
            receiver = target.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" and self.cls:
                self.engine._merge_field(self.cls.full_name, target.attr, taints)
            elif isinstance(receiver, ast.Name) and receiver.id in self.local_types:
                self.engine._merge_field(
                    self.local_types[receiver.id], target.attr, taints
                )
            elif isinstance(receiver, ast.Name):
                existing = self.locals_taint.get(receiver.id, EMPTY)
                self.locals_taint[receiver.id] = existing | taints
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                existing = self.locals_taint.get(target.value.id, EMPTY)
                self.locals_taint[target.value.id] = existing | taints
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, taints, value)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taints, value)

    def _constructed_type(self, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        resolved = self.resolve(value.func)
        if resolved is not None and resolved in self.project.classes:
            return resolved
        return None

    # -- expressions ---------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        return self.project.resolve_expr(
            node, self.mod, cls=self.cls, local_types=self.local_types
        )

    def is_set_like(self, node: ast.AST) -> bool:
        """Shallow SIM003-style set-ness (literals, calls, tracked names)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_locals
        if isinstance(node, ast.IfExp):
            return self.is_set_like(node.body) or self.is_set_like(node.orelse)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self.is_set_like(node.left) or self.is_set_like(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    return True
                if func.attr in (
                    "union",
                    "intersection",
                    "difference",
                    "symmetric_difference",
                    "copy",
                ):
                    return self.is_set_like(func.value)
        return False

    def eval(self, node: ast.expr) -> TaintSet:
        if isinstance(node, ast.Name):
            if node.id in self.locals_taint:
                return self.locals_taint[node.id]
            if node.id in self.mod.global_names or node.id in self.mod.mutable_globals:
                bucket = self.engine.global_taints.get((self.mod.name, node.id))
                return frozenset(bucket) if bucket else EMPTY
            return EMPTY
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            resolved = self.resolve(node)
            if resolved in ENV_READS:
                return frozenset(
                    {
                        Taint(
                            KIND_ENVIRON,
                            resolved or "os.environ",
                            self.mod.path,
                            node.lineno,
                        )
                    }
                )
            taints = self.eval(node.value)
            # self.attr / typed-local.attr reads pull field taints.
            receiver_cls: Optional[str] = None
            if isinstance(node.value, ast.Name):
                if node.value.id == "self" and self.cls is not None:
                    receiver_cls = self.cls.full_name
                elif node.value.id in self.local_types:
                    receiver_cls = self.local_types[node.value.id]
            if receiver_cls is not None:
                bucket = self.engine.field_taints.get((receiver_cls, node.attr))
                if bucket:
                    taints |= frozenset(bucket)
            return taints
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Taint] = set()
            for value in node.values:
                out |= self.eval(value)
            return frozenset(out)
        if isinstance(node, ast.Compare):
            out = set(self.eval(node.left))
            for comp in node.comparators:
                out |= self.eval(comp)
            return frozenset(out)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    out |= self.eval(element.value)
                else:
                    out |= self.eval(element)
            return frozenset(out)
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return frozenset(out)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node.generators, [node.elt], node)
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node.generators, [node.key, node.value], node)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value)
            return frozenset(out)
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            return EMPTY  # opaque; lambdas given to run_grid are SIM106's job
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.return_taints |= self.eval(node.value)
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            taints = self.eval(node.value)
            self.assign(node.target, taints, node.value)
            return taints
        if isinstance(node, ast.Slice):
            out = set()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self.eval(part)
            return frozenset(out)
        return EMPTY

    def _eval_comp(
        self,
        generators: List[ast.comprehension],
        elements: List[ast.expr],
        node: ast.expr,
    ) -> TaintSet:
        out: Set[Taint] = set()
        for gen in generators:
            taints = self.eval(gen.iter)
            if self.is_set_like(gen.iter):
                taints |= {
                    Taint(
                        KIND_SET_ORDER,
                        "iteration over an unordered collection",
                        self.mod.path,
                        gen.iter.lineno,
                    )
                }
            self.assign(gen.target, taints, gen.iter)
            out |= taints
            for cond in gen.ifs:
                self.eval(cond)
        for element in elements:
            out |= self.eval(element)
        if isinstance(node, ast.SetComp):
            out = set(drop_order(frozenset(out)))
        return frozenset(out)

    # -- calls ---------------------------------------------------------
    def eval_call(self, node: ast.Call) -> TaintSet:
        resolved = self.resolve(node.func)

        positional = [
            self.eval(a.value if isinstance(a, ast.Starred) else a)
            for a in node.args
        ]
        keywords = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                keywords.setdefault("**", self.eval(kw.value))
        receiver = (
            self.eval(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else EMPTY
        )
        call_args = CallArgs(
            positional=positional, keywords=keywords, receiver=receiver
        )

        if self.observer is not None and self.func is not None:
            self.observer(node, resolved, self.func, call_args)

        # 1. Nondeterminism sources.
        source = source_for_call(resolved, node, self.mod.path)
        if source is not None:
            return frozenset({source}) | call_args.all_taints()

        # 2. Order-sensitive / order-insensitive builtins.
        if resolved in ORDER_KILLERS:
            return drop_order(call_args.all_taints())
        if resolved in ORDER_MATERIALIZERS:
            taints = call_args.all_taints()
            if node.args and self.is_set_like(node.args[0]):
                taints |= {
                    Taint(
                        KIND_SET_ORDER,
                        f"{(resolved or 'list').rsplit('.', 1)[-1]}() over an "
                        "unordered collection",
                        self.mod.path,
                        node.lineno,
                    )
                }
            return taints

        # 3. set.pop() materializes an arbitrary element.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "pop":
            if self.is_set_like(node.func.value):
                return receiver | frozenset(
                    {
                        Taint(
                            KIND_SET_ORDER,
                            "set.pop()",
                            self.mod.path,
                            node.lineno,
                        )
                    }
                )

        # 4. Project-internal callee: use (and feed) its summary.
        callee = self.project.function_for(resolved) if resolved else None
        if callee is not None:
            summary = self.engine.summaries[callee.full_name]
            self._propagate_args(callee, node, call_args)
            out: Set[Taint] = set(summary.return_taints)
            for index in summary.return_params:
                site = self._arg_for_param(callee, node, call_args, index)
                if site is not None:
                    out |= site
            return frozenset(out)

        # 5. Constructor of a project class: taints flow into its fields
        #    via the __init__ summary; the instance itself carries arg
        #    taints so attribute reads on untracked receivers still see
        #    them.
        if resolved is not None and resolved in self.project.classes:
            init = self.project.function_for(f"{resolved}.__init__")
            if init is not None:
                self._propagate_args(init, node, call_args, skip_self=True)
            return call_args.all_taints()

        # 6. Unknown callee: conservative union of receiver + arguments.
        return receiver | call_args.all_taints()

    def _propagate_args(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        call_args: CallArgs,
        skip_self: bool = False,
    ) -> None:
        """Feed concrete argument taints into the callee's parameters."""
        offset = 0
        params = callee.params
        if params and params[0] in ("self", "cls"):
            if skip_self or isinstance(node.func, ast.Attribute):
                offset = 1
        for pos, taints in enumerate(call_args.positional):
            if taints:
                self.engine._merge_param(callee.full_name, pos + offset, taints)
        for name, taints in call_args.keywords.items():
            if not taints or name == "**":
                continue
            index = callee.param_index(name)
            if index is not None:
                self.engine._merge_param(callee.full_name, index, taints)

    @staticmethod
    def _arg_for_param(
        callee: FunctionInfo,
        node: ast.Call,
        call_args: CallArgs,
        index: int,
    ) -> Optional[TaintSet]:
        params = callee.params
        offset = 1 if params and params[0] in ("self", "cls") and isinstance(
            node.func, ast.Attribute
        ) else 0
        pos = index - offset
        if 0 <= pos < len(call_args.positional):
            return call_args.positional[pos]
        if 0 <= index < len(params):
            return call_args.keywords.get(params[index])
        return None


def describe_taint(taint: Taint) -> str:
    """``"wall-clock value from 'time.time()' at src/x.py:12"``."""
    label = SOURCE_LABELS.get(taint.kind, taint.kind)
    return f"{label} value from {taint.origin!r} at {taint.path}:{taint.line}"


def rebase_taint(taint: Taint, path: str) -> Taint:
    """A copy of ``taint`` re-anchored to ``path`` (fixture helpers)."""
    return replace(taint, path=path)
