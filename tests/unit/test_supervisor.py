"""The supervised run manager: manifests, statuses, resume, budgets."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import GridExecutionError, ManifestError
from repro.experiments.common import (
    ScenarioConfig,
    build_fault_profile,
    build_jobs,
    build_topology,
    run_scenario,
)
from repro.experiments.parallel import WorkUnit, default_cache_salt
from repro.experiments.supervisor import (
    MANIFEST_SCHEMA,
    config_from_record,
    execute_supervised_unit,
    load_manifest,
    resume_run,
    run_supervised,
    unit_from_record,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import CoflowSimulation

SCHEDULERS = ("pfs", "gurita")


def _config(**overrides) -> ScenarioConfig:
    base = dict(name="sup", num_jobs=5, seed=9, schedulers=SCHEDULERS)
    base.update(overrides)
    return ScenarioConfig(**base)


class TestManifestRecords:
    def test_config_record_round_trip(self):
        config = _config(
            arrival_mode="bursty",
            offered_load=2.0,
            fault_profile="link-flap",
            fault_intensity=1.5,
        )
        unit = WorkUnit(config=config, seed=77, label="rt")
        salt = default_cache_salt()
        from repro.experiments.supervisor import _unit_record

        record = _unit_record(unit, salt)
        rebuilt = unit_from_record(record, salt)
        assert rebuilt.config == config
        assert rebuilt.seed == 77
        assert rebuilt.label == "rt"
        assert rebuilt.fingerprint(salt) == unit.fingerprint(salt)

    def test_tampered_record_raises_manifest_error(self):
        unit = WorkUnit(config=_config())
        salt = default_cache_salt()
        from repro.experiments.supervisor import _unit_record

        record = _unit_record(unit, salt)
        record["config"]["num_jobs"] = 999  # edited after the fact
        with pytest.raises(ManifestError, match="stale"):
            unit_from_record(record, salt)

    def test_unknown_config_field_raises_manifest_error(self):
        with pytest.raises(ManifestError):
            config_from_record({"name": "x", "not_a_field": 1})

    def test_load_manifest_rejects_garbage_and_bad_schema(self, tmp_path):
        with pytest.raises(ManifestError):
            load_manifest(tmp_path / "missing.json")
        bad = tmp_path / "manifest.json"
        bad.write_text("{not json")
        with pytest.raises(ManifestError):
            load_manifest(bad)
        bad.write_text(json.dumps({"schema": MANIFEST_SCHEMA + 1}))
        with pytest.raises(ManifestError, match="schema"):
            load_manifest(bad)


class TestRunSupervised:
    def test_clean_run_matches_run_scenario(self, tmp_path):
        config = _config()
        report = run_supervised(
            [WorkUnit(config=config)], tmp_path, checkpoint_every=0.5
        )
        assert report.statuses == ["completed"]
        assert report.ok and not report.resumable
        supervised = report.report.results[0]
        plain = run_scenario(config)
        for name in SCHEDULERS:
            assert (
                supervised.results[name].job_completion_times()
                == plain.results[name].job_completion_times()
            )
        # Completed units leave no checkpoint/partial litter behind.
        assert not list((tmp_path / "checkpoints").glob("*.ckpt"))
        assert not list((tmp_path / "partial").glob("*.pkl"))

    def test_manifest_records_statuses_and_round_trips(self, tmp_path):
        run_supervised([WorkUnit(config=_config())], tmp_path)
        manifest = load_manifest(tmp_path)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["salt"] == default_cache_salt()
        (record,) = manifest["units"]
        assert record["status"] == "completed"
        unit_from_record(record, manifest["salt"])  # verifies fingerprint

    def test_partial_state_resumes_and_reuses_completed_scheduler(
        self, tmp_path
    ):
        config = _config()
        unit = WorkUnit(config=config)
        fingerprint = unit.fingerprint(default_cache_salt())

        # Simulate an interrupted attempt: scheduler "pfs" already done,
        # its result persisted in the unit's partial file.
        topology = build_topology(config)
        jobs = build_jobs(config, topology.num_hosts)
        done = CoflowSimulation(
            topology,
            make_scheduler("pfs"),
            jobs,
            faults=build_fault_profile(config),
        ).run()
        partial_dir = tmp_path / "partial"
        partial_dir.mkdir(parents=True)
        (partial_dir / f"{fingerprint}.pkl").write_bytes(
            pickle.dumps({"pfs": done})
        )

        report = run_supervised([unit], tmp_path)
        assert report.statuses == ["resumed"]
        outcome = report.report.results[0]
        plain = run_scenario(config)
        for name in SCHEDULERS:
            assert (
                outcome.results[name].job_completion_times()
                == plain.results[name].job_completion_times()
            )

    def test_budget_abandons_then_resume_completes(self, tmp_path):
        units = [WorkUnit(config=_config()), WorkUnit(config=_config(), seed=2)]
        report = run_supervised(
            units, tmp_path, run_budget=1e-9, allow_partial=True
        )
        assert report.statuses == ["abandoned", "abandoned"]
        assert report.resumable and not report.ok
        assert report.report.stats.abandoned == 2
        manifest = load_manifest(tmp_path)
        assert [u["status"] for u in manifest["units"]] == [
            "abandoned",
            "abandoned",
        ]

        resumed = resume_run(tmp_path)
        assert resumed.statuses == ["completed", "completed"]
        plain = run_scenario(_config())
        outcome = resumed.report.results[0]
        for name in SCHEDULERS:
            assert (
                outcome.results[name].job_completion_times()
                == plain.results[name].job_completion_times()
            )

    def test_allow_partial_false_raises_but_writes_manifest(self, tmp_path):
        units = [WorkUnit(config=_config())]
        with pytest.raises(GridExecutionError, match="resumable"):
            run_supervised(units, tmp_path, run_budget=1e-9)
        manifest = load_manifest(tmp_path)
        assert manifest["units"][0]["status"] == "abandoned"

    def test_status_counts_and_to_dict(self, tmp_path):
        report = run_supervised(
            [WorkUnit(config=_config())], tmp_path, allow_partial=True
        )
        counts = report.counts()
        assert counts["completed"] == 1
        payload = report.to_dict()
        assert payload["statuses"] == ["completed"]
        assert payload["status_counts"]["completed"] == 1
        assert payload["manifest"].endswith("manifest.json")
        assert payload["stats"]["abandoned"] == 0
        json.dumps(payload)  # JSON-safe end to end


class TestResumeRun:
    def test_salt_mismatch_rejected(self, tmp_path):
        run_supervised([WorkUnit(config=_config())], tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["salt"] = "someone-elses-build"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="salt"):
            resume_run(manifest_path)

    def test_empty_manifest_rejected(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            json.dumps(
                {
                    "schema": MANIFEST_SCHEMA,
                    "salt": default_cache_salt(),
                    "units": [],
                }
            )
        )
        with pytest.raises(ManifestError, match="no units"):
            resume_run(manifest_path)

    def test_resume_accepts_directory_or_file(self, tmp_path):
        run_supervised([WorkUnit(config=_config())], tmp_path)
        by_dir = resume_run(tmp_path)
        by_file = resume_run(tmp_path / "manifest.json")
        assert by_dir.statuses == by_file.statuses == ["completed"]


class TestSupervisedWorker:
    def test_corrupt_checkpoint_falls_back_to_fresh_run(self, tmp_path):
        config = _config()
        unit = WorkUnit(config=config)
        salt = default_cache_salt()
        fingerprint = unit.fingerprint(salt)
        ckpt_dir = tmp_path / "checkpoints"
        ckpt_dir.mkdir(parents=True)
        (ckpt_dir / f"{fingerprint}.pfs.ckpt").write_bytes(b"garbage bytes")

        outcome = execute_supervised_unit(
            unit, str(tmp_path), checkpoint_every=0.5, salt=salt
        )
        plain = run_scenario(config)
        for name in SCHEDULERS:
            assert (
                outcome.results[name].job_completion_times()
                == plain.results[name].job_completion_times()
            )
