"""The paper's evaluation figures as runnable experiment definitions.

Each ``figureN_*`` function returns the scenario configs (or runs them)
for the corresponding paper artifact; the benchmark suite under
``benchmarks/`` calls these and prints the same rows/series the paper
reports.  Figure 2 and Figure 4 (the motivating examples) live in
:mod:`repro.theory.examples` since they are analytic.

Scale note: the paper's trace has coflows from 150 racks replayed over an
hour, and its bursty scenario uses a 48-pod FatTree with 10,000 jobs.  The
defaults here are laptop-scale renditions — the same 8-pod FatTree as the
paper's trace-driven runs, with arrival spans calibrated to the same
sustained-overload regime — preserving the comparisons' *shape*.  Pass
``full_scale=True`` where offered to configure the paper's original
parameters (hours of runtime in pure Python).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.common import (
    PAPER_SCHEDULERS,
    ScenarioConfig,
    ScenarioResult,
)
from repro.experiments.parallel import (
    GridReport,
    ProgressHook,
    WorkUnit,
    run_grid,
)

#: Figure 5's four scenario columns: structure x (trace | bursty).
FIG5_SCENARIOS: Tuple[Tuple[str, str, str], ...] = (
    ("FB-t", "fb-tao", "uniform"),
    ("CD-t", "tpcds", "uniform"),
    ("FB-b", "fb-tao", "bursty"),
    ("CD-b", "tpcds", "bursty"),
)


def figure5_configs(num_jobs: int = 60, seed: int = 42) -> List[ScenarioConfig]:
    """Average improvement over PFS/Baraat/Stream/Aalo, four scenarios."""
    return [
        ScenarioConfig(
            name=name,
            structure=structure,
            arrival_mode=arrival_mode,
            num_jobs=num_jobs,
            seed=seed,
        )
        for name, structure, arrival_mode in FIG5_SCENARIOS
    ]


def run_figure_configs(
    configs: Sequence[ScenarioConfig],
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressHook] = None,
) -> Tuple[Dict[str, ScenarioResult], GridReport]:
    """Run a figure's scenario list through the grid engine.

    Returns ``({scenario name -> result}, engine report)`` with names in
    config order; ``parallel=1`` is the serial degenerate case.
    """
    units = [WorkUnit(config=config) for config in configs]
    report = run_grid(  # simlint: ignore[SIM106] (default worker bumps the benchmark rebuild counter; write-only instrumentation)
        units, parallel=parallel, cache_dir=cache_dir, progress=progress
    )
    outcomes = report.scenario_results()
    return (
        {config.name: outcome for config, outcome in zip(configs, outcomes)},
        report,
    )


def figure5_run(
    num_jobs: int = 60,
    seed: int = 42,
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, ScenarioResult]:
    """Run Figure 5: {scenario name -> results per scheduler}."""
    outcomes, _ = run_figure_configs(
        figure5_configs(num_jobs, seed), parallel=parallel, cache_dir=cache_dir
    )
    return outcomes


def figure6_config(
    structure: str, num_jobs: int = 100, seed: int = 42
) -> ScenarioConfig:
    """Trace-driven per-category improvement (6a: fb-tao, 6b: tpcds).

    More jobs than Figure 5 so the Table-1 categories are well populated.
    """
    return ScenarioConfig(
        name=f"fig6-{structure}",
        structure=structure,
        arrival_mode="uniform",
        num_jobs=num_jobs,
        seed=seed,
    )


def figure7_config(
    structure: str,
    num_jobs: int = 100,
    seed: int = 42,
    full_scale: bool = False,
) -> ScenarioConfig:
    """Bursty large-scale per-category improvement (7a/7b).

    ``full_scale=True`` selects the paper's 48-pod FatTree and 10,000
    jobs (27,648 servers, 2,880 switches) — expect hours of runtime.
    """
    if full_scale:
        return ScenarioConfig(
            name=f"fig7-{structure}-full",
            structure=structure,
            arrival_mode="bursty",
            num_jobs=10_000,
            fattree_k=48,
            seed=seed,
            burst_size=50,
            burst_gap=0.5,
        )
    return ScenarioConfig(
        name=f"fig7-{structure}",
        structure=structure,
        arrival_mode="bursty",
        num_jobs=num_jobs,
        seed=seed,
        burst_size=10,
        burst_gap=1.0,
    )


def figure8_config(
    structure: str, num_jobs: int = 100, seed: int = 42
) -> ScenarioConfig:
    """Gurita vs the clairvoyant GuritaPlus (8a: fb-tao, 8b: tpcds)."""
    return ScenarioConfig(
        name=f"fig8-{structure}",
        structure=structure,
        arrival_mode="uniform",
        num_jobs=num_jobs,
        seed=seed,
        schedulers=("gurita", "gurita+"),
    )


__all__ = [
    "FIG5_SCENARIOS",
    "PAPER_SCHEDULERS",
    "figure5_configs",
    "figure5_run",
    "figure6_config",
    "figure7_config",
    "figure8_config",
    "run_figure_configs",
]
