"""Scheduling policies: the Gurita comparators from the paper's §V."""

from repro.schedulers.aalo import AaloScheduler
from repro.schedulers.baraat import DEFAULT_HEAVY_BYTES, BaraatScheduler
from repro.schedulers.base import SchedulerContext, SchedulerPolicy
from repro.schedulers.las import LasScheduler
from repro.schedulers.pfs import PerFlowFairSharing
from repro.schedulers.stream import StreamScheduler
from repro.schedulers.tbs import StageBytesSjf, TotalBytesSjf
from repro.schedulers.thresholds import (
    DEFAULT_FIRST_THRESHOLD,
    DEFAULT_THRESHOLD_BASE,
    ExponentialThresholds,
)
from repro.schedulers.varys import SebfScheduler

__all__ = [
    "AaloScheduler",
    "BaraatScheduler",
    "DEFAULT_FIRST_THRESHOLD",
    "DEFAULT_HEAVY_BYTES",
    "DEFAULT_THRESHOLD_BASE",
    "ExponentialThresholds",
    "LasScheduler",
    "PerFlowFairSharing",
    "SchedulerContext",
    "SchedulerPolicy",
    "SebfScheduler",
    "StageBytesSjf",
    "StreamScheduler",
    "TotalBytesSjf",
]
