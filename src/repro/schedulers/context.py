"""Read-only world state the runtime exposes to scheduling policies."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.jobs.coflow import Coflow
from repro.jobs.job import Job


class SchedulerContext:
    """Lookups over the simulation's jobs and coflows.

    Policies receive this at bind time and may query it during any hook;
    they must treat it as read-only.  ``job_bytes_sent`` is an O(1)
    incremental counter the runtime maintains (the naive
    ``Job.bytes_sent`` property walks every flow, which is too slow on the
    allocation hot path).
    """

    def __init__(
        self,
        jobs: Dict[int, Job],
        coflows: Dict[int, Coflow],
        job_bytes: Optional[Dict[int, float]] = None,
    ) -> None:
        self._jobs = jobs
        self._coflows = coflows
        self._job_bytes = job_bytes

    def job_bytes_sent(self, job_id: int) -> float:
        """Bytes delivered so far by the job (O(1) when runtime-backed)."""
        if self._job_bytes is not None:
            return self._job_bytes.get(job_id, 0.0)
        return self._jobs[job_id].bytes_sent

    def job(self, job_id: int) -> Job:
        return self._jobs[job_id]

    def coflow(self, coflow_id: int) -> Coflow:
        return self._coflows[coflow_id]

    def job_of_coflow(self, coflow_id: int) -> Job:
        return self._jobs[self._coflows[coflow_id].job_id]

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())
