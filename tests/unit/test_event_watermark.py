"""Tests for the event queue's monotonic pop watermark.

Scheduling an event earlier than the latest popped timestamp (beyond
float time resolution) is a causality bug; the queue now rejects it at
the ``push`` call site instead of letting it surface later as a backwards
clock jump.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.timecmp import time_resolution


def test_watermark_starts_unset():
    queue = EventQueue()
    assert queue.watermark == -math.inf
    # Before the first pop, any non-negative time is schedulable.
    queue.push(0.0, EventKind.JOB_ARRIVAL)
    queue.push(1e9, EventKind.JOB_ARRIVAL)


def test_pop_advances_watermark():
    queue = EventQueue()
    queue.push(1.0, EventKind.JOB_ARRIVAL)
    queue.push(2.0, EventKind.JOB_ARRIVAL)
    queue.pop()
    assert queue.watermark == 1.0
    queue.pop()
    assert queue.watermark == 2.0


def test_push_behind_watermark_raises():
    queue = EventQueue()
    queue.push(5.0, EventKind.JOB_ARRIVAL)
    queue.pop()
    with pytest.raises(SimulationError, match="behind the pop watermark"):
        queue.push(4.0, EventKind.FLOW_COMPLETION)


def test_push_at_watermark_allowed():
    """Same-timestamp scheduling stays legal (event batches rely on it)."""
    queue = EventQueue()
    queue.push(5.0, EventKind.JOB_ARRIVAL)
    queue.pop()
    queue.push(5.0, EventKind.SCHEDULER_UPDATE)
    assert len(queue) == 1


def test_push_within_time_resolution_allowed():
    """A timestamp within float resolution of the watermark is 'now'."""
    queue = EventQueue()
    queue.push(5.0, EventKind.JOB_ARRIVAL)
    queue.pop()
    queue.push(5.0 - math.ulp(5.0), EventKind.SCHEDULER_UPDATE)
    assert len(queue) == 1


def test_push_just_beyond_resolution_raises():
    queue = EventQueue()
    queue.push(5.0, EventKind.JOB_ARRIVAL)
    queue.pop()
    behind = 5.0 - 2.0 * time_resolution(5.0)
    with pytest.raises(SimulationError, match="behind the pop watermark"):
        queue.push(behind, EventKind.SCHEDULER_UPDATE)


def test_negative_time_still_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError, match="negative time"):
        queue.push(-1.0, EventKind.JOB_ARRIVAL)


def test_out_of_order_pushes_ahead_of_watermark_fine():
    """Pushes need not be ordered among themselves, only causal."""
    queue = EventQueue()
    queue.push(3.0, EventKind.JOB_ARRIVAL)
    queue.pop()
    queue.push(10.0, EventKind.JOB_ARRIVAL)
    queue.push(4.0, EventKind.FLOW_COMPLETION)
    assert queue.pop().time == 4.0
    assert queue.pop().time == 10.0
