"""Multi-seed trials: mean and spread of improvement factors.

A single seed is one draw of the synthetic trace; the paper's factors are
averages over a real hour of traffic.  The trial runner replays a scenario
over several seeds and reports mean ± standard deviation of each
comparison, so a bench can distinguish a robust win from seed noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.experiments.parallel import GridReport, WorkUnit, run_grid


@dataclass(frozen=True)
class TrialStats:
    """Mean and sample standard deviation of one comparison across seeds."""

    mean: float
    std: float
    samples: int

    @staticmethod
    def from_values(values: Sequence[float]) -> "TrialStats":
        if not values:
            raise ValueError("no samples")
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return TrialStats(mean=mean, std=0.0, samples=n)
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        return TrialStats(mean=mean, std=math.sqrt(variance), samples=n)

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f} (n={self.samples})"


@dataclass
class TrialResult:
    """Per-seed scenario outcomes plus aggregated improvement factors."""

    config: ScenarioConfig
    outcomes: List[ScenarioResult]
    #: the engine report behind this trial (units, cache hits, timings)
    report: Optional[GridReport] = field(default=None, compare=False)

    def improvement_stats(
        self, reference: str = "gurita"
    ) -> Dict[str, TrialStats]:
        """Mean ± std of each comparator's improvement factor."""
        per_scheduler: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            for name, factor in outcome.improvements_over(reference).items():
                per_scheduler.setdefault(name, []).append(factor)
        return {
            name: TrialStats.from_values(values)
            for name, values in per_scheduler.items()
        }

    def average_jct_stats(self) -> Dict[str, TrialStats]:
        """Mean ± std of each policy's average JCT across seeds."""
        per_scheduler: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            for name, jct in outcome.average_jcts().items():
                per_scheduler.setdefault(name, []).append(jct)
        return {
            name: TrialStats.from_values(values)
            for name, values in per_scheduler.items()
        }

    def gap_stats(self) -> Dict[str, TrialStats]:
        """Mean ± std of each policy's mean optimality gap across seeds.

        Unlike :meth:`improvement_stats` this is an absolute yardstick —
        each seed's value is measured JCT over the combinatorial lower
        bound (see :mod:`repro.theory.lowerbound`), so 1.00 means the
        policy hit the physical floor on that draw of the trace.
        """
        per_scheduler: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            for name, gap in outcome.mean_optimality_gaps().items():
                per_scheduler.setdefault(name, []).append(gap)
        return {
            name: TrialStats.from_values(values)
            for name, values in per_scheduler.items()
        }


def run_trials(
    config: ScenarioConfig,
    seeds: Sequence[int] = (1, 2, 3),
    schedulers: Optional[Sequence[str]] = None,
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> TrialResult:
    """Replay the scenario once per seed (workloads differ, policies fixed).

    Seeds fan out across ``parallel`` workers through the grid engine;
    outcomes come back in seed order and are bit-identical to a serial
    (``parallel=1``) run.  A failed seed raises
    :class:`repro.errors.GridExecutionError` after its retry.
    """
    names = tuple(schedulers) if schedulers is not None else None
    units = [
        WorkUnit(config=config, seed=seed, schedulers=names) for seed in seeds
    ]
    report = run_grid(units, parallel=parallel, cache_dir=cache_dir)  # simlint: ignore[SIM106] (default worker bumps the benchmark rebuild counter; write-only instrumentation)
    return TrialResult(
        config=config, outcomes=report.scenario_results(), report=report
    )
