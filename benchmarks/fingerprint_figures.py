"""Print a stable fingerprint of the figure-5/6 JCT distributions.

Used to verify that determinism-motivated source changes leave the
paper artifacts bit-identical: run before and after, diff the output.

    PYTHONPATH=src python benchmarks/fingerprint_figures.py
"""

from __future__ import annotations

import hashlib
import json

from repro.experiments.common import run_scenario
from repro.experiments.figures import figure5_configs, figure6_config


def fingerprint(payload: object) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


def main() -> None:
    record = {}
    for config in figure5_configs():
        outcome = run_scenario(config)
        record[f"fig5/{config.name}"] = {
            name: sorted(result.job_completion_times().items())
            for name, result in outcome.results.items()
        }
    for structure in ("fb-tao", "tpcds"):
        config = figure6_config(structure)
        outcome = run_scenario(config)
        record[f"fig6/{structure}"] = {
            name: sorted(result.job_completion_times().items())
            for name, result in outcome.results.items()
        }
    for key in sorted(record):
        print(f"{key}: {fingerprint(record[key])}")
    print(f"overall: {fingerprint(record)}")


if __name__ == "__main__":
    main()
