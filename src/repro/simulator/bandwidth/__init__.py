"""Bandwidth allocation: max-min (TCP), SPQ, and WRR-emulated SPQ.

Two execution paths share one water-filling core:

* the **legacy path** (:func:`dispatch_allocation`) rebuilds link
  membership from a fresh route map on every call;
* the **incremental engine** (:class:`AllocationState`) keeps membership
  alive across allocation epochs and applies flow/priority deltas.
"""

from repro.simulator.bandwidth.engine import AllocationState, EngineStats
from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    allocate_maxmin,
    membership_rebuilds,
    reset_membership_rebuilds,
    water_fill,
    water_fill_membership,
)
from repro.simulator.bandwidth.request import (
    DEFAULT_NUM_CLASSES,
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
    dispatch_allocation,
)
from repro.simulator.bandwidth.spq import (
    allocate_spq,
    allocate_spq_memberships,
    group_by_class,
)
from repro.simulator.bandwidth.wrr import (
    allocate_wrr,
    allocate_wrr_memberships,
    class_loads_from_counts,
    spq_waiting_times,
    wrr_weights,
)

__all__ = [
    "AllocationMode",
    "AllocationRequest",
    "AllocationState",
    "DEFAULT_NUM_CLASSES",
    "EngineStats",
    "LinkMembership",
    "MAX_SWITCH_CLASSES",
    "allocate_maxmin",
    "allocate_spq",
    "allocate_spq_memberships",
    "allocate_wrr",
    "allocate_wrr_memberships",
    "class_loads_from_counts",
    "dispatch_allocation",
    "group_by_class",
    "membership_rebuilds",
    "reset_membership_rebuilds",
    "spq_waiting_times",
    "water_fill",
    "water_fill_membership",
    "wrr_weights",
]
