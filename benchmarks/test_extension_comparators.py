"""Extension comparison: Gurita vs clairvoyant SEBF and per-flow LAS.

Beyond the paper's own comparators, two reference points bracket Gurita:

* **SEBF (Varys)** — clairvoyant coflow scheduling: knows every remaining
  flow size up front.  The related-work section dismisses it as
  impractical ("assumes that job size and structure are known ahead of
  time"); the bench shows how much of that oracle's advantage Gurita
  recovers without any prior knowledge.
* **LAS (PIAS-style)** — information-agnostic like Gurita, but purely
  per-flow: no coflow or stage awareness.  The gap between LAS and Gurita
  isolates the value of the coflow/stage abstraction itself.
"""

from _util import bench_jobs

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.metrics.report import format_bar_chart


def test_extension_comparators(run_once):
    config = ScenarioConfig(
        name="extensions",
        num_jobs=bench_jobs(40),
        seed=27,
        schedulers=("pfs", "las", "sebf", "gurita"),
    )
    outcome = run_once(run_scenario, config)
    jcts = outcome.average_jcts()
    factors = {name: jcts[name] / jcts["gurita"] for name in jcts}
    print("\nEXTENSION  average JCT relative to Gurita (>1 = slower):")
    print(format_bar_chart({k: v for k, v in factors.items() if k != "gurita"}))

    # Gurita (no prior knowledge) must beat both agnostic baselines...
    assert jcts["gurita"] < jcts["pfs"]
    assert jcts["gurita"] < jcts["las"] * 1.05
    # ...while the full oracle may stay ahead, within a bounded margin.
    assert jcts["sebf"] > jcts["gurita"] * 0.7
