"""Property-based round-trips for checkpoint snapshot/restore.

The checkpoint contract is *bit-identical continuation*: a component
restored from ``snapshot_state()`` must behave exactly like the original
from that point on.  These properties drive randomized histories through
the two event-queue variants (including same-timestamp batches, which
straddle the bucket queue's per-timestamp cursors) and the incremental
allocation engine, snapshot mid-history via a real pickle round-trip,
and require the restored object to reproduce the original's observable
behaviour event-for-event and rate-for-rate.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulator.bandwidth.engine import AllocationState
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest
from repro.simulator.events import (
    BucketEventQueue,
    EventKind,
    EventQueue,
    make_event_queue,
)

#: Coarse timestamp grid so draws collide on exact float timestamps —
#: the bucket queue's batching (and its cursors) only engage on ties.
TIME_GRID = [0.0, 0.25, 0.25, 0.5, 0.5, 0.5, 1.0, 1.5, 1.5, 2.0, 3.0]


@st.composite
def queue_histories(draw):
    """(variant, ops) where ops interleave pushes and pops.

    Pushes respect the watermark by construction: each drawn timestamp
    is offset by the running maximum popped time, so histories never
    trip the causality guard and every draw is a valid history.
    """
    variant = draw(st.sampled_from(["heap", "bucket"]))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop"]),
                st.sampled_from(TIME_GRID),
                st.sampled_from(list(EventKind)),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return variant, ops


def apply_ops(queue, ops, payload_prefix):
    """Drive a queue through ops; returns the observed pop sequence."""
    popped = []
    for index, (op, offset, kind) in enumerate(ops):
        if op == "push":
            base = max(queue.watermark, 0.0)  # watermark is -inf pre-pop
            queue.push(base + offset, kind, payload=(payload_prefix, index))
        elif len(queue):
            event = queue.pop()
            popped.append((event.time, int(event.kind), event.seq, event.payload))
    return popped


def drain(queue):
    out = []
    while len(queue):
        event = queue.pop()
        out.append((event.time, int(event.kind), event.seq, event.payload))
    return out


class TestEventQueueRoundTrip:
    @given(queue_histories())
    @settings(max_examples=150, deadline=None)
    def test_snapshot_restores_identical_drain_order(self, history):
        """Snapshot mid-history; the restored queue drains identically."""
        variant, ops = history
        split = len(ops) // 2
        original = make_event_queue(variant)
        apply_ops(original, ops[:split], "pre")

        snapshot = pickle.loads(pickle.dumps(original.snapshot_state()))
        restored = make_event_queue(variant)
        restored.restore_state(snapshot)

        # Both queues then see the same tail of the history...
        tail_original = apply_ops(original, ops[split:], "post")
        tail_restored = apply_ops(restored, ops[split:], "post")
        assert tail_restored == tail_original
        # ...and drain the same remaining events in the same total order.
        assert drain(restored) == drain(original)
        assert restored.watermark == original.watermark

    @given(queue_histories())
    @settings(max_examples=100, deadline=None)
    def test_sequence_counter_continues_after_restore(self, history):
        """Post-restore pushes continue the original seq numbering."""
        variant, ops = history
        original = make_event_queue(variant)
        apply_ops(original, ops, "pre")

        restored = make_event_queue(variant)
        restored.restore_state(
            pickle.loads(pickle.dumps(original.snapshot_state()))
        )
        base = max(original.watermark, 0.0)
        assert (
            restored.push(base + 1.0, EventKind.SCHEDULER_UPDATE).seq
            == original.push(base + 1.0, EventKind.SCHEDULER_UPDATE).seq
        )

    def test_same_timestamp_batch_straddling_snapshot(self):
        """A half-drained bucket (cursor mid-batch) survives the round-trip."""
        queue = BucketEventQueue()
        for _ in range(4):
            queue.push(1.0, EventKind.JOB_ARRIVAL)
        queue.push(2.0, EventKind.SCHEDULER_UPDATE)
        queue.pop()  # cursor now points inside the t=1.0 bucket
        queue.pop()

        restored = BucketEventQueue()
        restored.restore_state(pickle.loads(pickle.dumps(queue.snapshot_state())))
        # Pushing back into the half-drained timestamp must slot behind
        # the cursor exactly as it would on the original.
        queue.push(1.0, EventKind.FLOW_COMPLETION)
        restored.push(1.0, EventKind.FLOW_COMPLETION)
        assert drain(restored) == drain(queue)

    def test_variant_mismatch_is_rejected(self):
        heap = EventQueue()
        heap.push(1.0, EventKind.JOB_ARRIVAL)
        with pytest.raises(SimulationError):
            BucketEventQueue().restore_state(heap.snapshot_state())


@st.composite
def engine_histories(draw):
    """Flow add/remove/allocate histories over a small fixed fabric."""
    ops = []
    alive = set()
    next_id = 0
    for _ in range(draw(st.integers(min_value=2, max_value=25))):
        choice = draw(st.sampled_from(["add", "remove", "allocate"]))
        if choice == "add":
            route = tuple(
                sorted(
                    draw(
                        st.sets(
                            st.integers(min_value=0, max_value=3),
                            min_size=1,
                            max_size=2,
                        )
                    )
                )
            )
            ops.append(("add", next_id, route))
            alive.add(next_id)
            next_id += 1
        elif choice == "remove" and alive:
            victim = draw(st.sampled_from(sorted(alive)))
            ops.append(("remove", victim, None))
            alive.discard(victim)
        else:
            priorities = {
                flow: draw(st.integers(min_value=0, max_value=3))
                for flow in sorted(alive)
            }
            ops.append(("allocate", None, priorities))
    return ops


def apply_engine_ops(state, ops):
    """Drive an AllocationState; returns every allocation's rate vector."""
    rates = []
    for op, flow, arg in ops:
        if op == "add":
            state.add_flow(flow, arg)
        elif op == "remove":
            state.remove_flow(flow)
        else:
            request = AllocationRequest(
                mode=AllocationMode.SPQ, priorities=dict(arg), num_classes=4
            )
            rates.append(dict(state.allocate(request, priority_delta=None)))
    return rates


class TestAllocationStateRoundTrip:
    @given(engine_histories())
    @settings(max_examples=100, deadline=None)
    def test_restored_engine_allocates_identically(self, ops):
        split = len(ops) // 2
        capacities = [10.0, 10.0, 5.0, 20.0]
        original = AllocationState(capacities)
        apply_engine_ops(original, ops[:split])

        snapshot = pickle.loads(pickle.dumps(original.snapshot_state()))
        restored = AllocationState.__new__(AllocationState)
        restored.restore_state(snapshot)

        tail_original = apply_engine_ops(original, ops[split:])
        tail_restored = apply_engine_ops(restored, ops[split:])
        assert tail_restored == tail_original
        assert (
            restored.stats.cache_hits,
            restored.stats.delta_updates,
            restored.stats.full_rebuilds,
        ) == (
            original.stats.cache_hits,
            original.stats.delta_updates,
            original.stats.full_rebuilds,
        )
