"""Allocation requests: what a scheduling policy asks of the network.

A scheduler does not set rates directly.  Each reallocation round it
returns an :class:`AllocationRequest` describing *how* the network should
divide bandwidth — plain max-min (PFS / TCP), strict priority queuing, or
Gurita's WRR emulation — plus the per-flow priority classes.  The runtime
hands the request to :func:`dispatch_allocation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import SchedulerError
from repro.simulator.bandwidth.maxmin import Route, allocate_maxmin
from repro.simulator.bandwidth.spq import allocate_spq
from repro.simulator.bandwidth.wrr import DEFAULT_UTILIZATION, allocate_wrr

#: Number of priority queues used in the paper's evaluation (§V).
DEFAULT_NUM_CLASSES = 4

#: What commodity switches typically support (paper cites 8).
MAX_SWITCH_CLASSES = 8


class AllocationMode(enum.Enum):
    """How link bandwidth is divided among flows."""

    MAXMIN = "maxmin"  #: per-flow fair sharing (TCP model; the PFS baseline)
    SPQ = "spq"  #: strict priority queuing
    WRR = "wrr"  #: WRR-emulated SPQ (Gurita's starvation mitigation)


@dataclass
class AllocationRequest:
    """A scheduler's bandwidth-division instructions for one round."""

    mode: AllocationMode = AllocationMode.MAXMIN
    #: flow id -> priority class, 0 = highest.  Ignored for MAXMIN.
    priorities: Dict[int, int] = field(default_factory=dict)
    num_classes: int = DEFAULT_NUM_CLASSES
    #: Utilisation parameter for the WRR waiting-time model.
    utilization: float = DEFAULT_UTILIZATION
    #: "inverse_wait" (default) or "literal"; see :mod:`...bandwidth.wrr`.
    weight_mode: str = "inverse_wait"

    def __post_init__(self) -> None:
        if not 1 <= self.num_classes <= MAX_SWITCH_CLASSES:
            raise SchedulerError(
                f"num_classes must be in [1, {MAX_SWITCH_CLASSES}], "
                f"got {self.num_classes}"
            )

    def params_key(self) -> Tuple[object, ...]:
        """Everything but the priority map, as a cache-invalidation key.

        The incremental engine discards its cached rates (and, when
        ``num_classes`` changes, its per-class memberships) whenever two
        consecutive requests disagree on this key.
        """
        return (
            self.mode,
            self.num_classes,
            self.utilization,
            self.weight_mode,
        )


def dispatch_allocation(
    request: AllocationRequest,
    flow_routes: Mapping[int, Route],
    capacities: Sequence[float],
) -> Dict[int, float]:
    """Compute per-flow rates for ``request`` over the given routes."""
    if request.mode is AllocationMode.MAXMIN:
        return allocate_maxmin(flow_routes, list(capacities))
    if request.mode is AllocationMode.SPQ:
        return allocate_spq(
            flow_routes, request.priorities, capacities, request.num_classes
        )
    if request.mode is AllocationMode.WRR:
        return allocate_wrr(
            flow_routes,
            request.priorities,
            capacities,
            request.num_classes,
            utilization=request.utilization,
            weight_mode=request.weight_mode,
        )
    raise SchedulerError(f"unknown allocation mode {request.mode!r}")
