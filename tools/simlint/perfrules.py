"""SIM201-SIM207: performance rules over the hot closure (``--perf``).

The third simlint layer.  :mod:`tools.simlint.hotpath` resolves the
hot-path registry against the project and yields (a) the registered hot
functions and (b) SIM207 closure-escape/registry-drift findings; the
content rules here then inspect each hot function for the patterns PR 6
had to remove by hand:

* SIM201 — unguarded or eagerly-formatted logging calls;
* SIM202 — per-iteration allocation inside loops;
* SIM203 — numpy scalar item access inside loops;
* SIM204 — instantiating ``__slots__``-less project classes;
* SIM205 — repeated ``self.x.y`` attribute chains inside loops;
* SIM206 — ``try/except`` or generator indirection inside loops.

``# simlint: ignore[SIM2xx]`` pragmas suppress findings per line exactly
as for the other layers; the separate ``# simlint: hot-ok[reason]``
pragma (SIM207 only) acknowledges a deliberately-cold call *out of* the
closure.  The committed ``tools/simlint/perf_baseline.json`` uses the
same mechanics as the deep baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.simlint.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    build_project,
    dotted_name,
)
from tools.simlint.findings import Finding, PragmaIndex
from tools.simlint.hotpath import HotAnalysis, analyze_hot_paths, local_types_for
from tools.simlint.hotpaths import HotPathRegistry

#: The committed perf baseline consumed by CI and ``make perf-lint``.
DEFAULT_PERF_BASELINE_PATH = "tools/simlint/perf_baseline.json"


@dataclass(frozen=True)
class PerfRule:
    """Descriptor of one hot-closure performance rule."""

    code: str
    name: str
    description: str


PERF_RULES: Tuple[PerfRule, ...] = (
    PerfRule(
        code="SIM201",
        name="hot-logging",
        description=(
            "A logging call in the hot closure is unguarded, or formats "
            "its message eagerly (f-string, .format, %-interpolation). "
            "Gate hot-loop logging behind a cached isEnabledFor flag and "
            "pass lazy %-style arguments."
        ),
    ),
    PerfRule(
        code="SIM202",
        name="hot-loop-allocation",
        description=(
            "A loop in a hot function allocates per iteration: a "
            "comprehension or generator expression, a list/dict/set/tuple "
            "literal or constructor, lambda/closure creation, or sequence "
            "concatenation with '+'. Hoist the allocation or restructure."
        ),
    ),
    PerfRule(
        code="SIM203",
        name="hot-numpy-scalar",
        description=(
            "Scalar item access on a numpy array inside a hot loop. "
            "Python-level numpy indexing is several times slower than "
            "plain list indexing at hot-path sizes (the PR-6 "
            "_VECTOR_DISPATCH calibration result) — use lists or hoist "
            "with .tolist()."
        ),
    ),
    PerfRule(
        code="SIM204",
        name="hot-no-slots",
        description=(
            "A hot-closure function instantiates a project class without "
            "__slots__. Instance dicts cost allocation and cache misses "
            "per construction; exceptions and enums are exempt."
        ),
    ),
    PerfRule(
        code="SIM205",
        name="hot-attr-chain",
        description=(
            "The same self.x.y attribute chain is read repeatedly inside "
            "a hot loop. Bind it to a local before the loop — attribute "
            "dictionary lookups are per-access, not cached."
        ),
    ),
    PerfRule(
        code="SIM206",
        name="hot-control-indirection",
        description=(
            "try/except inside a hot loop, or a hot loop iterating a "
            "project generator function. Exception-handler setup and "
            "generator frame switches are per-iteration costs — hoist "
            "the handler or materialize the sequence."
        ),
    ),
    PerfRule(
        code="SIM207",
        name="hot-closure-escape",
        description=(
            "A hot-closure function calls a project function outside the "
            "hot-path registry (or the registry and the @hot_path "
            "markers drifted apart). Register the callee in "
            "tools/simlint/hotpaths.py or acknowledge the cold call with "
            "'# simlint: hot-ok[reason]'."
        ),
    ),
)

PERF_RULES_BY_CODE: Dict[str, PerfRule] = {rule.code: rule for rule in PERF_RULES}

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_SEQUENCE_CONSTRUCTORS = frozenset({"list", "dict", "set", "tuple", "frozenset"})
_NUMPY_COPY_METHODS = frozenset({"copy", "astype", "reshape", "ravel", "view"})
_SLOTS_EXEMPT_BASES = frozenset(
    {"Exception", "BaseException", "NamedTuple", "Enum", "IntEnum", "Protocol"}
)


def _parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _outermost_loops(func_node: ast.AST) -> List[ast.AST]:
    """Loop statements of ``func_node`` not nested in another loop."""
    loops: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                loops.append(child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # different frame
            else:
                visit(child)

    visit(func_node)
    return loops


def _loop_body_nodes(loop: ast.AST) -> Iterable[ast.AST]:
    """Every node executed per iteration (the body, not the iter)."""
    for stmt in getattr(loop, "body", []):
        yield from ast.walk(stmt)


def _finding(
    mod: ModuleInfo, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=mod.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


# ----------------------------------------------------------------------
# SIM201: logging in the hot closure
# ----------------------------------------------------------------------
def _is_loggerish(node: ast.AST) -> bool:
    parts = dotted_name(node)
    return parts is not None and "log" in parts[-1].lower()


def _debug_guarded_ids(func_node: ast.AST) -> Set[int]:
    """ids of nodes lexically inside an ``if <debug-flag>:`` body."""

    def is_debug_test(test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Call):
                parts = dotted_name(sub.func)
                if parts is not None and parts[-1] == "isEnabledFor":
                    return True
            terminal: Optional[str] = None
            if isinstance(sub, ast.Name):
                terminal = sub.id
            elif isinstance(sub, ast.Attribute):
                terminal = sub.attr
            if terminal is not None and "debug" in terminal.lower():
                return True
        return False

    guarded: Set[int] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.If) and is_debug_test(node.test):
            for stmt in node.body:
                guarded.update(id(sub) for sub in ast.walk(stmt))
    return guarded


def _eager_format_args(call: ast.Call) -> bool:
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        for sub in ast.walk(value):
            if isinstance(sub, ast.JoinedStr):
                return True
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr == "format":
                    return True
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mod):
            left = value.left
            if isinstance(left, ast.JoinedStr) or (
                isinstance(left, ast.Constant) and isinstance(left.value, str)
            ):
                return True
    return False


def _check_logging(func: FunctionInfo, mod: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    guarded = _debug_guarded_ids(func.node)
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        if node.func.attr not in _LOG_METHODS:
            continue
        if not _is_loggerish(node.func.value):
            continue
        call_name = ".".join(dotted_name(node.func) or (node.func.attr,))
        if _eager_format_args(node):
            findings.append(
                _finding(
                    mod,
                    node,
                    "SIM201",
                    f"logging call '{call_name}' in hot-path function "
                    f"'{func.qualname}' formats its message eagerly "
                    "(f-string/.format/%); pass lazy %-style arguments",
                )
            )
        elif id(node) not in guarded:
            findings.append(
                _finding(
                    mod,
                    node,
                    "SIM201",
                    f"unguarded logging call '{call_name}' in hot-path "
                    f"function '{func.qualname}'; gate it behind a cached "
                    "isEnabledFor flag (see docs/performance.md)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM202: per-iteration allocation in hot loops
# ----------------------------------------------------------------------
def _allocation_kind(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return "comprehension"
    if isinstance(node, ast.GeneratorExp):
        return "generator expression"
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return "container literal"
    if isinstance(node, ast.Lambda):
        return "lambda (closure creation)"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return "nested def (closure creation)"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _SEQUENCE_CONSTRUCTORS:
            return f"{node.func.id}() constructor"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        if isinstance(node.left, (ast.List, ast.Tuple)) or isinstance(
            node.right, (ast.List, ast.Tuple)
        ):
            return "sequence concatenation with '+'"
    if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
        if isinstance(node.value, (ast.List, ast.Tuple)):
            return "sequence concatenation with '+='"
    return None


def _check_loop_allocation(func: FunctionInfo, mod: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[int] = set()
    for loop in _outermost_loops(func.node):
        for node in _loop_body_nodes(loop):
            if id(node) in seen:
                continue
            kind = _allocation_kind(node)
            if kind is None:
                continue
            seen.add(id(node))
            findings.append(
                _finding(
                    mod,
                    node,
                    "SIM202",
                    f"{kind} allocates per iteration inside a loop of "
                    f"hot-path function '{func.qualname}'; hoist it out "
                    "of the loop or restructure",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM203: numpy scalar item access in hot loops
# ----------------------------------------------------------------------
def _numpy_aliases(mod: ModuleInfo) -> Set[str]:
    return {
        local
        for local, target in mod.imports.items()
        if target.split(".")[0] == "numpy"
    }


def _annotation_is_ndarray(annotation: ast.AST) -> bool:
    for sub in ast.walk(annotation):
        terminal: Optional[str] = None
        if isinstance(sub, ast.Name):
            terminal = sub.id
        elif isinstance(sub, ast.Attribute):
            terminal = sub.attr
        if terminal in {"NDArray", "ndarray"}:
            return True
    return False


def _tracked_arrays(func: FunctionInfo, mod: ModuleInfo) -> Set[str]:
    """Local names statically known to hold numpy arrays."""
    tracked: Set[str] = set()
    aliases = _numpy_aliases(mod)
    args = func.node.args  # type: ignore[attr-defined]
    for arg in [*getattr(args, "posonlyargs", []), *args.args, *args.kwonlyargs]:
        if arg.annotation is not None and _annotation_is_ndarray(arg.annotation):
            tracked.add(arg.arg)

    def value_is_array(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        parts = dotted_name(value.func)
        if parts is not None and parts[0] in aliases:
            return True
        if (
            isinstance(value.func, ast.Attribute)
            and value.func.attr in _NUMPY_COPY_METHODS
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id in tracked
        ):
            return True
        return False

    # Two passes so copies-of-copies propagate.
    for _ in range(2):
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and value_is_array(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.value is not None and value_is_array(node.value):
                    tracked.add(node.target.id)
    return tracked


def _check_numpy_scalar(func: FunctionInfo, mod: ModuleInfo) -> List[Finding]:
    tracked = _tracked_arrays(func, mod)
    if not tracked:
        return []
    findings: List[Finding] = []
    seen: Set[int] = set()
    for loop in _outermost_loops(func.node):
        for node in _loop_body_nodes(loop):
            if id(node) in seen or not isinstance(node, ast.Subscript):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if not isinstance(node.value, ast.Name):
                continue
            if node.value.id not in tracked:
                continue
            if isinstance(node.slice, (ast.Slice, ast.Tuple)):
                continue  # slicing/multi-dim views, not scalar access
            seen.add(id(node))
            findings.append(
                _finding(
                    mod,
                    node,
                    "SIM203",
                    f"scalar item access on numpy array '{node.value.id}' "
                    f"inside a loop of hot-path function '{func.qualname}'; "
                    "python-level numpy indexing loses to plain lists at "
                    "hot-path sizes — use lists or hoist with .tolist()",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM204: __slots__-less instantiation in the hot closure
# ----------------------------------------------------------------------
def _class_has_slots(cls: ClassInfo) -> bool:
    for stmt in cls.node.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _class_is_slots_exempt(cls: ClassInfo) -> bool:
    if cls.name.endswith(("Error", "Exception", "Warning")):
        return True
    for base in cls.base_names:
        terminal = base.rsplit(".", 1)[-1]
        if terminal in _SLOTS_EXEMPT_BASES or terminal.endswith(
            ("Error", "Exception", "Warning")
        ):
            return True
    return False


def _check_slots(
    func: FunctionInfo,
    mod: ModuleInfo,
    project: Project,
    cls: Optional[ClassInfo],
    local_types: Dict[str, str],
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = project.resolve_expr(
            node.func, mod, cls=cls, local_types=local_types
        )
        if resolved is None or resolved not in project.classes:
            continue
        target = project.classes[resolved]
        if _class_has_slots(target) or _class_is_slots_exempt(target):
            continue
        findings.append(
            _finding(
                mod,
                node,
                "SIM204",
                f"hot-path function '{func.qualname}' instantiates "
                f"'{resolved}' which lacks __slots__; add __slots__ or "
                "keep construction off the hot path",
            )
        )
    return findings


# ----------------------------------------------------------------------
# SIM205: repeated self.x.y chains in hot loops
# ----------------------------------------------------------------------
def _check_attr_chains(func: FunctionInfo, mod: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    parents = _parent_map(func.node)
    for loop in _outermost_loops(func.node):
        chains: Dict[Tuple[str, ...], List[ast.AST]] = {}
        for node in _loop_body_nodes(loop):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # inner part of a longer chain
            parts = dotted_name(node)
            if parts is None or parts[0] != "self" or len(parts) < 3:
                continue
            chains.setdefault(parts, []).append(node)
        for parts, nodes in sorted(chains.items()):
            if len(nodes) < 2:
                continue
            anchor = min(
                nodes,
                key=lambda n: (getattr(n, "lineno", 1), getattr(n, "col_offset", 0)),
            )
            findings.append(
                _finding(
                    mod,
                    anchor,
                    "SIM205",
                    f"attribute chain '{'.'.join(parts)}' read "
                    f"{len(nodes)}x inside a loop of hot-path function "
                    f"'{func.qualname}'; bind it to a local before the loop",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM206: try/except or generator indirection in hot loops
# ----------------------------------------------------------------------
def _is_generator_function(func: FunctionInfo) -> bool:
    def scan(node: ast.AST) -> bool:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # different frame
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                return True
            if scan(child):
                return True
        return False

    return scan(func.node)


def _check_control_indirection(
    func: FunctionInfo,
    mod: ModuleInfo,
    project: Project,
    cls: Optional[ClassInfo],
    local_types: Dict[str, str],
) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[int] = set()
    for loop in _outermost_loops(func.node):
        for node in _loop_body_nodes(loop):
            if id(node) in seen or not isinstance(node, ast.Try):
                continue
            seen.add(id(node))
            findings.append(
                _finding(
                    mod,
                    node,
                    "SIM206",
                    f"try/except inside a loop of hot-path function "
                    f"'{func.qualname}'; exception-handler setup is a "
                    "per-iteration cost — hoist the handler or isolate "
                    "the faulting call",
                )
            )
    for node in ast.walk(func.node):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not isinstance(node.iter, ast.Call):
            continue
        resolved = project.resolve_expr(
            node.iter.func, mod, cls=cls, local_types=local_types
        )
        if resolved is None:
            continue
        callee = project.function_for(resolved)
        if callee is None or not _is_generator_function(callee):
            continue
        findings.append(
            _finding(
                mod,
                node.iter,
                "SIM206",
                f"hot-path function '{func.qualname}' iterates generator "
                f"function '{callee.full_name}'; generator frame switches "
                "are a per-item cost — materialize or inline the sequence",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class PerfReport:
    """Findings + suppression count of one perf analysis."""

    findings: List[Finding]
    suppressed: int
    files_checked: int
    acknowledged: int = 0


def _check_function(project: Project, func: FunctionInfo) -> List[Finding]:
    mod = project.module_for_function(func)
    cls = project.class_for_function(func)
    local_types = local_types_for(func, mod, project)
    findings: List[Finding] = []
    findings.extend(_check_logging(func, mod))
    findings.extend(_check_loop_allocation(func, mod))
    findings.extend(_check_numpy_scalar(func, mod))
    findings.extend(_check_slots(func, mod, project, cls, local_types))
    findings.extend(_check_attr_chains(func, mod))
    findings.extend(_check_control_indirection(func, mod, project, cls, local_types))
    return findings


def perf_lint_project(
    project: Project, registry: Optional[HotPathRegistry] = None
) -> PerfReport:
    """Run SIM201-SIM207 over the hot closure, applying per-line pragmas."""
    analysis: HotAnalysis = analyze_hot_paths(project, registry)
    findings: List[Finding] = list(analysis.findings)
    for func in analysis.functions:
        findings.extend(_check_function(project, func))

    pragmas: Dict[str, PragmaIndex] = {}
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        index = pragmas.get(finding.path)
        if index is None:
            mod = next(
                (m for m in project.modules.values() if m.path == finding.path),
                None,
            )
            index = PragmaIndex(mod.source if mod is not None else "")
            pragmas[finding.path] = index
        if index.skip_file or index.suppresses(finding.line, finding.code):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return PerfReport(
        findings=kept,
        suppressed=suppressed,
        files_checked=len(project.modules),
        acknowledged=analysis.acknowledged,
    )


def perf_lint_paths(
    paths: Sequence[str], registry: Optional[HotPathRegistry] = None
) -> PerfReport:
    """Hot-closure SIM201-SIM207 analysis over ``paths``."""
    return perf_lint_project(build_project(paths), registry)
