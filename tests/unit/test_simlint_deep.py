"""Fixture tests for the whole-program analyzer (``simlint --deep``).

Each deep rule (SIM101-SIM106) gets a good/bad fixture pair, the
interprocedural propagation contract is pinned with a two-module case,
and the baseline create/match/drift lifecycle is exercised end to end.
The shipped-tree acceptance run lives in
``tests/integration/test_deep_lint_acceptance.py``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from tools.simlint.__main__ import EXIT_CLEAN, EXIT_FINDINGS, main
from tools.simlint.baseline import (
    BaselineError,
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from tools.simlint.callgraph import build_project, parse_module
from tools.simlint.dataflow import analyze_project
from tools.simlint.findings import Finding

#: The sink scaffolding every fixture package shares: a local EventQueue
#: (resolved through self._queue attribute typing) and a run_grid with
#: the engine's signature.
SINKS_MODULE = """
    class EventQueue:
        def push(self, time, kind, payload=None, epoch=0):
            return (time, kind)


    def run_grid(units, parallel=1, cache_dir=None, cache=None, retries=1,
                 run_unit=None):
        return units


    def derive_unit_seed(config, seed=None, schedulers=None):
        return 7
"""


def make_package(tmp_path: Path, modules: Dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "sinks.py").write_text(textwrap.dedent(SINKS_MODULE))
    for name, source in modules.items():
        (root / f"{name}.py").write_text(textwrap.dedent(source))
    return root


def deep_findings(tmp_path: Path, modules: Dict[str, str]) -> List[Finding]:
    root = make_package(tmp_path, modules)
    project = build_project([str(root)])
    return analyze_project(project).findings


def codes(findings: List[Finding]) -> List[str]:
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# SIM101 — wall-clock taint
# ----------------------------------------------------------------------
class TestWallClockTaint:
    def test_direct_flow_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    import time
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self):
                            self._queue.push(time.time(), 1)
                """
            },
        )
        assert codes(found) == ["SIM101"]
        assert "time.time()" in found[0].message
        assert "EventQueue.push" in found[0].message

    def test_simulated_time_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()
                            self._now = 0.0

                        def go(self, dt):
                            self._queue.push(self._now + dt, 1)
                """
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM102 — unseeded-RNG taint
# ----------------------------------------------------------------------
class TestRngTaint:
    def test_unseeded_random_into_seed_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    import random
                    from pkg.sinks import derive_unit_seed

                    def fresh_seed(config):
                        jitter = random.Random()
                        return derive_unit_seed(config, seed=jitter.random())
                """
            },
        )
        assert "SIM102" in codes(found)

    def test_seeded_rng_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    import random
                    from pkg.sinks import derive_unit_seed

                    def fresh_seed(config, base):
                        rng = random.Random(base)
                        return derive_unit_seed(config, seed=rng.randrange(2**31))
                """
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM103 — environment taint
# ----------------------------------------------------------------------
class TestEnvironTaint:
    def test_environ_into_seed_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    import os
                    from pkg.sinks import derive_unit_seed

                    def seed_from_env(config):
                        return derive_unit_seed(config, seed=int(os.environ["SEED"]))
                """
            },
        )
        assert codes(found) == ["SIM103"]

    def test_pragma_with_reason_suppresses(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "blessed": """
                    import os
                    from pkg.sinks import derive_unit_seed

                    def seed_from_env(config):
                        salt = os.environ.get("SALT", "x")
                        return derive_unit_seed(config, seed=len(salt))  # simlint: ignore[SIM103]
                """
            },
        )
        assert found == []

    def test_literal_seed_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import derive_unit_seed

                    def seed(config):
                        return derive_unit_seed(config, seed=42)
                """
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM104 — hash()/id() taint
# ----------------------------------------------------------------------
class TestHashIdTaint:
    def test_hash_into_fingerprint_path_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self, payload):
                            self._queue.push(id(payload) * 1e-12, 1)
                """
            },
        )
        assert codes(found) == ["SIM104"]

    def test_stable_digest_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    import hashlib
                    from pkg.sinks import derive_unit_seed

                    def seed(config, encoded):
                        digest = hashlib.blake2b(encoded, digest_size=8).digest()
                        return derive_unit_seed(config, seed=int.from_bytes(digest, "big"))
                """
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM105 — set-iteration-order taint
# ----------------------------------------------------------------------
class TestSetOrderTaint:
    def test_list_of_set_into_timestamp_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self, etas):
                            pending = set(etas)
                            self._queue.push(list(pending)[0], 1)
                """
            },
        )
        assert codes(found) == ["SIM105"]

    def test_sorted_materialization_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self, etas):
                            pending = set(etas)
                            self._queue.push(sorted(pending)[0], 1)
                """
            },
        )
        assert found == []

    def test_min_reduction_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self, etas):
                            self._queue.push(min(set(etas)), 1)
                """
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM106 — worker purity
# ----------------------------------------------------------------------
class TestWorkerPurity:
    def test_lambda_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    from pkg.sinks import run_grid

                    def fan_out(units):
                        return run_grid(units, run_unit=lambda u: u)
                """
            },
        )
        assert codes(found) == ["SIM106"]
        assert "lambda" in found[0].message

    def test_nested_function_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    from pkg.sinks import run_grid

                    def fan_out(units):
                        def worker(u):
                            return u
                        return run_grid(units, run_unit=worker)
                """
            },
        )
        assert codes(found) == ["SIM106"]

    def test_method_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    from pkg.sinks import run_grid

                    class Harness:
                        def worker(self, u):
                            return u

                        def fan_out(self, units):
                            return run_grid(units, run_unit=self.worker)
                """
            },
        )
        assert codes(found) == ["SIM106"]
        assert "method" in found[0].message

    def test_mutable_global_read_fires(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "bad": """
                    from pkg.sinks import run_grid

                    _memo = {}

                    def remember(u):
                        _memo[u] = True
                        return u

                    def worker(u):
                        return remember(u)

                    def fan_out(units):
                        return run_grid(units, run_unit=worker)
                """
            },
        )
        assert codes(found) == ["SIM106"]
        assert "_memo" in found[0].message

    def test_pure_module_level_worker_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import run_grid

                    SCALE = 2.0

                    def worker(u):
                        return u * SCALE

                    def fan_out(units):
                        return run_grid(units, run_unit=worker)
                """
            },
        )
        assert found == []

    def test_default_run_unit_clean(self, tmp_path):
        """No sibling ``execute_unit`` next to run_grid: nothing to audit."""
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import run_grid

                    def fan_out(units):
                        return run_grid(units, parallel=4)
                """
            },
        )
        assert found == []

    def test_default_worker_impure_sibling_fires(self, tmp_path):
        """run_unit-less fan-outs audit run_grid's sibling execute_unit.

        This is the experiments/chaos.py::run_chaos shape: the call site
        never names a worker, so the purity audit must chase the default
        one through the module that defines run_grid.
        """
        found = deep_findings(
            tmp_path,
            {
                "grid": """
                    _calls = 0

                    def execute_unit(u):
                        global _calls
                        _calls += 1
                        return u

                    def run_grid(units, parallel=1, cache_dir=None,
                                 cache=None, retries=1, run_unit=None):
                        return units
                """,
                "bad": """
                    from pkg.grid import run_grid

                    def fan_out(units):
                        return run_grid(units, parallel=4)
                """,
            },
        )
        assert codes(found) == ["SIM106"]
        assert found[0].path.endswith("bad.py")
        assert "execute_unit" in found[0].message
        assert "_calls" in found[0].message

    def test_default_worker_pure_sibling_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "grid": """
                    SCALE = 2.0

                    def execute_unit(u):
                        return u * SCALE

                    def run_grid(units, parallel=1, cache_dir=None,
                                 cache=None, retries=1, run_unit=None):
                        return units
                """,
                "good": """
                    from pkg.grid import run_grid

                    def fan_out(units):
                        return run_grid(units, parallel=4)
                """,
            },
        )
        assert found == []

    def test_constant_registry_read_clean(self, tmp_path):
        """A mutable global never mutated inside a function is a registry."""
        found = deep_findings(
            tmp_path,
            {
                "good": """
                    from pkg.sinks import run_grid

                    _factories = {"a": int, "b": float}

                    def worker(u):
                        return _factories["a"](u)

                    def fan_out(units):
                        return run_grid(units, run_unit=worker)
                """
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# Interprocedural propagation across modules
# ----------------------------------------------------------------------
class TestInterproceduralPropagation:
    def test_two_module_two_hop_flow(self, tmp_path):
        """time.time() in module A reaches EventQueue.push in module B
        through two levels of helper indirection."""
        found = deep_findings(
            tmp_path,
            {
                "helpers": """
                    import time

                    def raw_stamp():
                        return time.time()

                    def stamp():
                        return raw_stamp()
                """,
                "runtime": """
                    from pkg.helpers import stamp
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self):
                            self._queue.push(stamp(), 1)
                """,
            },
        )
        assert codes(found) == ["SIM101"]
        finding = found[0]
        assert finding.path.endswith("runtime.py")  # reported at the sink
        assert "helpers.py" in finding.message  # attributed to the source

    def test_taint_through_instance_attribute(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "stateful": """
                    import time
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()
                            self._started = time.time()

                        def go(self):
                            self._queue.push(self._started, 1)
                """
            },
        )
        assert codes(found) == ["SIM101"]

    def test_parameter_flow_reported_at_sink_module(self, tmp_path):
        """Taint entering through a parameter is reported inside the
        callee holding the sink, attributed to the caller's source."""
        found = deep_findings(
            tmp_path,
            {
                "sink_mod": """
                    from pkg.sinks import EventQueue

                    class Pusher:
                        def __init__(self):
                            self._queue = EventQueue()

                        def push_at(self, when):
                            self._queue.push(when, 1)
                """,
                "caller": """
                    import time
                    from pkg.sink_mod import Pusher

                    def go():
                        Pusher().push_at(time.time())
                """,
            },
        )
        assert codes(found) == ["SIM101"]
        assert found[0].path.endswith("sink_mod.py")
        assert "caller.py" in found[0].message

    def test_untainted_cross_module_flow_clean(self, tmp_path):
        found = deep_findings(
            tmp_path,
            {
                "helpers": """
                    def stamp(base, dt):
                        return base + dt
                """,
                "runtime": """
                    from pkg.helpers import stamp
                    from pkg.sinks import EventQueue

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self, now):
                            self._queue.push(stamp(now, 0.5), 1)
                """,
            },
        )
        assert found == []


# ----------------------------------------------------------------------
# Module/name resolution
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_names_from_package_layout(self, tmp_path):
        root = make_package(tmp_path, {"mod": "x = 1\n"})
        info = parse_module(root / "mod.py")
        assert info.name == "pkg.mod"
        init = parse_module(root / "__init__.py")
        assert init.name == "pkg"

    def test_reexport_resolution(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "inner": """
                    def target():
                        return 1
                """,
            },
        )
        (root / "__init__.py").write_text("from pkg.inner import target\n")
        project = build_project([str(root)])
        assert (
            project.resolve_export("pkg.target") == "pkg.inner.target"
        )

    def test_relative_import_resolution(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "inner": """
                    def target():
                        return 1
                """,
                "user": """
                    from .inner import target

                    def call():
                        return target()
                """,
            },
        )
        project = build_project([str(root)])
        mod = project.modules["pkg.user"]
        assert mod.imports["target"] == "pkg.inner.target"


# ----------------------------------------------------------------------
# Baseline create / match / drift
# ----------------------------------------------------------------------
def _finding(path="a.py", line=3, code="SIM101", message="m") -> Finding:
    return Finding(path=path, line=line, col=0, code=code, message=message)


class TestBaseline:
    def test_round_trip_matches(self, tmp_path):
        findings = [_finding(), _finding(line=9), _finding(code="SIM105")]
        doc = baseline_from_findings(findings)
        target = save_baseline(doc, tmp_path / "bl.json")
        outcome = apply_baseline(findings, load_baseline(target))
        assert outcome.clean
        assert outcome.matched == 3

    def test_count_matching_is_multiset(self, tmp_path):
        # Two identical findings baselined; a third occurrence is new.
        doc = baseline_from_findings([_finding(), _finding(line=9)])
        outcome = apply_baseline(
            [_finding(), _finding(line=9), _finding(line=30)], doc
        )
        assert len(outcome.new_findings) == 1
        assert outcome.matched == 2
        assert not outcome.stale

    def test_line_drift_still_matches(self):
        doc = baseline_from_findings([_finding(line=3)])
        outcome = apply_baseline([_finding(line=300)], doc)
        assert outcome.clean

    def test_fixed_finding_is_stale(self):
        doc = baseline_from_findings([_finding(), _finding(code="SIM105")])
        outcome = apply_baseline([_finding()], doc)
        assert not outcome.clean
        assert [entry.code for entry in outcome.stale] == ["SIM105"]

    def test_new_finding_fails(self):
        doc = baseline_from_findings([_finding()])
        outcome = apply_baseline([_finding(), _finding(code="SIM106")], doc)
        assert not outcome.clean
        assert [f.code for f in outcome.new_findings] == ["SIM106"]

    def test_stable_serialization(self, tmp_path):
        findings = [_finding(code="SIM105"), _finding(), _finding(path="z.py")]
        first = save_baseline(
            baseline_from_findings(findings), tmp_path / "a.json"
        ).read_text()
        second = save_baseline(
            baseline_from_findings(list(reversed(findings))), tmp_path / "b.json"
        ).read_text()
        assert first == second

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(BaselineError):
            load_baseline(bad)
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(bad)


# ----------------------------------------------------------------------
# CLI contract for --deep / --baseline / --write-baseline
# ----------------------------------------------------------------------
class TestDeepCli:
    BAD = {
        "bad": """
            import time
            from pkg.sinks import EventQueue

            class Runtime:
                def __init__(self):
                    self._queue = EventQueue()

                def go(self):
                    self._queue.push(time.time(), 1)
        """
    }

    def test_deep_findings_exit(self, tmp_path, capsys):
        root = make_package(tmp_path, self.BAD)
        assert main(["--deep", str(root)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "SIM101" in out

    def test_deep_clean_without_flag(self, tmp_path, capsys):
        """The taint rules only run under --deep."""
        root = make_package(tmp_path, self.BAD)
        # SIM001 does not fire either: the fixture path is outside the
        # simulator scope, so the classic run is clean.
        assert main([str(root)]) == EXIT_CLEAN

    def test_write_then_match_then_drift(self, tmp_path, capsys):
        root = make_package(tmp_path, self.BAD)
        baseline = tmp_path / "bl.json"
        assert main(["--deep", str(root), "--write-baseline", str(baseline)]) == EXIT_CLEAN
        assert main(["--deep", str(root), "--baseline", str(baseline)]) == EXIT_CLEAN
        # Fix the violation: the baseline entry goes stale -> drift fails.
        (root / "bad.py").write_text(
            "def go(now):\n    return now\n"
        )
        assert main(["--deep", str(root), "--baseline", str(baseline)]) == EXIT_FINDINGS
        assert "stale" in capsys.readouterr().out

    def test_json_findings_sorted_by_path_line_rule(self, tmp_path, capsys):
        root = make_package(
            tmp_path,
            {
                "multi": """
                    import time
                    from pkg.sinks import EventQueue, run_grid

                    class Runtime:
                        def __init__(self):
                            self._queue = EventQueue()

                        def go(self, etas):
                            self._queue.push(time.time(), 1)
                            self._queue.push(list(set(etas))[0], 2)

                    def fan_out(units):
                        return run_grid(units, run_unit=lambda u: u)
                """
            },
        )
        assert main(["--deep", "--json", str(root)]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        keys = [
            (f["path"], f["line"], f["code"]) for f in payload["findings"]
        ]
        assert keys == sorted(keys)

    def test_select_filters_deep_codes(self, tmp_path, capsys):
        root = make_package(tmp_path, self.BAD)
        assert main(["--deep", "--select", "SIM106", str(root)]) == EXIT_CLEAN
        assert main(["--deep", "--select", "SIM101", str(root)]) == EXIT_FINDINGS

    def test_deep_codes_rejected_without_deep(self, tmp_path):
        root = make_package(tmp_path, self.BAD)
        assert main(["--select", "SIM101", str(root)]) == 2
