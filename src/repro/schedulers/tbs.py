"""Total-bytes-sent (TBS) schedulers: the strawmen of the paper's §II.

Two clairvoyant variants used by the motivation experiments (Figure 2):

* :class:`TotalBytesSjf` — classic Shortest-Job-First on the job's *total*
  bytes across all stages (what the paper argues against);
* :class:`StageBytesSjf` — the same mechanism, but ranking jobs by the
  bytes of their *currently running stage* (the paper's scenario-2
  intuition, a simplified stage-aware scheduler).
"""

from __future__ import annotations

from typing import Dict, List

from repro.jobs.flow import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
)


class TotalBytesSjf(SchedulerPolicy):
    """Clairvoyant SJF on total job size (the TBS strawman).

    Incomplete jobs are ranked by total bytes sent across all stages; the
    job's rank (capped at the number of switch queues) becomes the priority
    class of all its flows.
    """

    name = "tbs-sjf"

    def __init__(self, num_classes: int = MAX_SWITCH_CLASSES) -> None:
        super().__init__()
        self.num_classes = num_classes

    def _job_score(self, job_id: int) -> float:
        assert self.context is not None
        return self.context.job(job_id).total_bytes

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        assert self.context is not None
        job_ids = sorted(
            {self.context.coflow(f.coflow_id).job_id for f in active_flows}
        )
        ranked = sorted(job_ids, key=lambda jid: (self._job_score(jid), jid))
        job_class: Dict[int, int] = {
            jid: min(rank, self.num_classes - 1) for rank, jid in enumerate(ranked)
        }
        priorities = {
            f.flow_id: job_class[self.context.coflow(f.coflow_id).job_id]
            for f in active_flows
        }
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities=priorities,
            num_classes=self.num_classes,
        )


class StageBytesSjf(TotalBytesSjf):
    """Clairvoyant SJF on the bytes of the job's currently running stage.

    This is the paper's Figure-2 "scenario 2" scheduler: identical to
    :class:`TotalBytesSjf` except jobs are ranked by how much data their
    active stage transmits, so a large job with a light stage is not
    punished for its history.
    """

    name = "stage-sjf"

    def _job_score(self, job_id: int) -> float:
        assert self.context is not None
        job = self.context.job(job_id)
        running = job.running_coflows()
        if not running:
            return job.total_bytes
        return sum(c.total_bytes for c in running)
