"""Tests for the opt-in runtime invariant checker.

Covers the failure classes directly (injected capacity, volume, causality,
and cache-coherence violations), the strict mode, env-var opt-in, and the
clean end-to-end path on a real simulation.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.jobs import single_stage_job
from repro.jobs.flow import Flow
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.bandwidth.engine import AllocationState
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest
from repro.simulator.invariants import (
    INVARIANTS_ENV,
    InvariantChecker,
    invariants_from_env,
)
from repro.simulator.observability import invariant_counters
from repro.simulator.runtime import CoflowSimulation
from repro.simulator.topology.bigswitch import BigSwitchTopology

GB = 1e9


def make_flow(flow_id, route, size=1.0 * GB):
    flow = Flow(
        flow_id=flow_id, coflow_id=0, src=0, dst=1, size_bytes=size
    )
    flow.route = route
    return flow


def make_checker(**kwargs):
    return InvariantChecker([10.0, 10.0, 10.0], **kwargs)


# ----------------------------------------------------------------------
# Conservation checks
# ----------------------------------------------------------------------
class TestAllocationChecks:
    def test_clean_allocation_records_nothing(self):
        checker = make_checker()
        flows = [make_flow(1, (0, 1)), make_flow(2, (1, 2))]
        checker.check_allocation(flows, {1: 5.0, 2: 5.0}, now=1.0)
        report = checker.report()
        assert report.clean
        assert report.checks == 1

    def test_over_capacity_link_detected(self):
        checker = make_checker()
        flows = [make_flow(1, (0, 1)), make_flow(2, (1, 2))]
        checker.check_allocation(flows, {1: 8.0, 2: 8.0}, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.CAPACITY] == 1
        assert "link 1" in report.examples[0].message

    def test_tolerance_absorbs_float_drift(self):
        checker = make_checker(relative_tolerance=1e-6)
        flows = [make_flow(1, (0,))]
        checker.check_allocation(flows, {1: 10.0 * (1.0 + 1e-9)}, now=0.0)
        assert checker.report().clean

    def test_negative_rate_detected(self):
        checker = make_checker()
        checker.check_allocation([make_flow(1, (0,))], {1: -1.0}, now=0.0)
        assert checker.report().counts[InvariantChecker.CAPACITY] == 1

    def test_negative_volume_detected(self):
        checker = make_checker()
        flow = make_flow(1, (0,))
        flow.remaining_bytes = -1.0
        checker.check_allocation([flow], {1: 1.0}, now=0.0)
        assert (
            checker.report().counts[InvariantChecker.NEGATIVE_VOLUME] == 1
        )


# ----------------------------------------------------------------------
# Event causality
# ----------------------------------------------------------------------
class TestCausality:
    def test_past_event_detected(self):
        checker = make_checker()
        checker.check_event_causality(event_time=1.0, now=2.0)
        assert checker.report().counts[InvariantChecker.CAUSALITY] == 1

    def test_present_and_future_events_clean(self):
        checker = make_checker()
        checker.check_event_causality(event_time=2.0, now=2.0)
        checker.check_event_causality(event_time=3.0, now=2.0)
        assert checker.report().clean


# ----------------------------------------------------------------------
# Cache-coherence audit of the incremental engine
# ----------------------------------------------------------------------
class TestEngineAudit:
    CAPS = [10.0, 10.0, 10.0]

    def build_engine(self, flows, request):
        engine = AllocationState(self.CAPS)
        for flow in flows:
            engine.add_flow(flow.flow_id, flow.route)
        engine.allocate(request)
        return engine

    def test_coherent_engine_audits_clean(self):
        flows = [make_flow(1, (0, 1)), make_flow(2, (1, 2))]
        request = AllocationRequest(
            mode=AllocationMode.SPQ, priorities={1: 0, 2: 1}
        )
        engine = self.build_engine(flows, request)
        checker = make_checker()
        checker.audit_engine(engine, flows, request, now=1.0)
        assert checker.report().clean

    def test_stale_membership_detected(self):
        flows = [make_flow(1, (0, 1)), make_flow(2, (1, 2))]
        request = AllocationRequest(mode=AllocationMode.MAXMIN)
        engine = self.build_engine(flows, request)
        checker = make_checker()
        # Flow 2 finished but the removal delta was lost.
        checker.audit_engine(engine, flows[:1], request, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.CACHE_COHERENCE] == 1
        assert "stale" in report.examples[0].message

    def test_missing_membership_detected(self):
        flows = [make_flow(1, (0, 1)), make_flow(2, (1, 2))]
        request = AllocationRequest(mode=AllocationMode.MAXMIN)
        engine = self.build_engine(flows[:1], request)
        checker = make_checker()
        # Flow 2 is active but the add delta was lost.
        checker.audit_engine(engine, flows, request, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.CACHE_COHERENCE] == 1
        assert "missing" in report.examples[0].message

    def test_unreported_priority_change_detected(self):
        flows = [make_flow(1, (0, 1)), make_flow(2, (1, 2))]
        request = AllocationRequest(
            mode=AllocationMode.SPQ, priorities={1: 0, 2: 1}
        )
        engine = self.build_engine(flows, request)
        # The policy moved flow 2 into class 0 but never told the engine:
        # the *request* says class 0, the cached layout still says class 1.
        moved = AllocationRequest(
            mode=AllocationMode.SPQ, priorities={1: 0, 2: 0}
        )
        checker = make_checker()
        checker.audit_engine(engine, flows, moved, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.CACHE_COHERENCE] >= 1
        assert "priority change" in report.examples[0].message

    def test_maxmin_skips_class_audit(self):
        flows = [make_flow(1, (0, 1))]
        spq = AllocationRequest(mode=AllocationMode.SPQ, priorities={1: 0})
        engine = self.build_engine(flows, spq)
        # Class caches may be stale under MAXMIN by design.
        checker = make_checker()
        checker.audit_engine(
            engine, flows, AllocationRequest(mode=AllocationMode.MAXMIN), now=1.0
        )
        assert checker.report().clean

    def test_sampled_audit_interval(self):
        flows = [make_flow(1, (0, 1))]
        request = AllocationRequest(mode=AllocationMode.MAXMIN)
        engine = self.build_engine(flows, request)
        checker = make_checker(audit_interval=3)
        ran = [
            checker.maybe_audit_engine(engine, flows, request, now=1.0)
            for _ in range(6)
        ]
        assert ran == [False, False, True, False, False, True]

    def test_audit_interval_validated(self):
        with pytest.raises(SimulationError):
            make_checker(audit_interval=0)


# ----------------------------------------------------------------------
# Strict mode
# ----------------------------------------------------------------------
class TestStrictMode:
    def test_strict_raises_on_first_violation(self):
        checker = make_checker(strict=True)
        with pytest.raises(SimulationError, match="capacity"):
            checker.check_allocation(
                [make_flow(1, (0,))], {1: 100.0}, now=0.0
            )

    def test_non_strict_counts_and_continues(self):
        checker = make_checker()
        for _ in range(3):
            checker.check_allocation(
                [make_flow(1, (0,))], {1: 100.0}, now=0.0
            )
        assert checker.report().counts[InvariantChecker.CAPACITY] == 3

    def test_example_cap(self):
        checker = make_checker(max_examples=2)
        for _ in range(5):
            checker.check_allocation(
                [make_flow(1, (0,))], {1: 100.0}, now=0.0
            )
        report = checker.report()
        assert len(report.examples) == 2
        assert report.total_violations == 5


# ----------------------------------------------------------------------
# Environment opt-in and runtime wiring
# ----------------------------------------------------------------------
class TestEnvOptIn:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("", (False, False)),
            ("0", (False, False)),
            ("1", (True, False)),
            ("true", (True, False)),
            ("YES", (True, False)),
            ("strict", (True, True)),
        ],
    )
    def test_env_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv(INVARIANTS_ENV, raw)
        assert invariants_from_env() == expected

    def test_unset_env_disables(self, monkeypatch):
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        assert invariants_from_env() == (False, False)

    def test_env_enables_checker(self, monkeypatch, ids):
        monkeypatch.setenv(INVARIANTS_ENV, "strict")
        sim = self.make_sim(ids)
        assert sim.invariants is not None
        assert sim.invariants.strict

    def test_flag_overrides_env(self, monkeypatch, ids):
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        sim = self.make_sim(ids, check_invariants=False)
        assert sim.invariants is None

    @staticmethod
    def make_sim(ids, **kwargs):
        return CoflowSimulation(
            BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB),
            PerFlowFairSharing(),
            [single_stage_job([(0, 1, 0.5 * GB)], ids=ids)],
            **kwargs,
        )


class TestEndToEnd:
    def make_sim(self, ids, **kwargs):
        jobs = [
            single_stage_job([(0, 1, 0.5 * GB), (0, 2, 1.0 * GB)], ids=ids),
            single_stage_job(
                [(1, 3, 2.0 * GB)], arrival_time=0.25, ids=ids
            ),
        ]
        return CoflowSimulation(
            BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB),
            PerFlowFairSharing(),
            jobs,
            **kwargs,
        )

    def test_checked_run_is_clean_and_reported(self, ids):
        result = self.make_sim(ids, check_invariants=True).run()
        report = result.invariant_report
        assert report is not None
        assert report.clean
        assert report.checks > 0
        assert "0 violations" in report.summary()

    def test_unchecked_run_has_no_report(self, ids):
        result = self.make_sim(ids).run()
        assert result.invariant_report is None

    def test_invariant_counters_zero_filled(self, ids):
        checked = self.make_sim(ids, check_invariants=True).run()
        unchecked = self.make_sim(ids).run()
        for result in (checked, unchecked):
            counters = invariant_counters(result)
            assert set(counters) == set(InvariantChecker.KINDS)
            assert all(v == 0 for v in counters.values())

    def test_checked_run_does_not_change_jcts(self, ids):
        plain = self.make_sim(ids).run()
        # Fresh jobs (fresh ids) for the checked run: same shape, same JCTs.
        checked = self.make_sim(ids, check_invariants=True).run()
        assert sorted(plain.job_completion_times().values()) == sorted(
            checked.job_completion_times().values()
        )


# ----------------------------------------------------------------------
# Fault-aware checks
# ----------------------------------------------------------------------
class TestFaultAwareChecks:
    def test_allocation_on_downed_link_detected(self):
        checker = make_checker()
        checker.note_fault_state(downed_links={1}, crashed_hosts=set())
        flow = make_flow(1, (0, 1))
        checker.check_allocation([flow], {1: 5.0}, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.DOWNED_LINK] == 1

    def test_zero_rate_on_downed_link_is_fine(self):
        checker = make_checker()
        checker.note_fault_state(downed_links={1}, crashed_hosts=set())
        flow = make_flow(1, (0, 1))
        checker.check_allocation([flow], {1: 0.0}, now=1.0)
        assert checker.report().clean

    def test_progress_on_crashed_host_detected(self):
        checker = make_checker()
        checker.note_fault_state(downed_links=set(), crashed_hosts={0})
        flow = make_flow(1, (2,))  # src=0 per make_flow
        checker.check_allocation([flow], {1: 5.0}, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.CRASHED_HOST] == 1

    def test_repair_clears_fault_state(self):
        checker = make_checker()
        checker.note_fault_state(downed_links={1}, crashed_hosts={0})
        checker.note_fault_state(downed_links=set(), crashed_hosts=set())
        flow = make_flow(1, (0, 1))
        checker.check_allocation([flow], {1: 5.0}, now=1.0)
        assert checker.report().clean

    def test_revoked_capacity_feeds_conservation_check(self):
        checker = make_checker()
        checker.note_capacity(1, 2.0)  # revoke 10 -> 2
        flows = [make_flow(1, (0, 1))]
        checker.check_allocation(flows, {1: 5.0}, now=1.0)
        report = checker.report()
        assert report.counts[InvariantChecker.CAPACITY] == 1

    def test_strict_mode_raises_on_downed_link(self):
        checker = make_checker(strict=True)
        checker.note_fault_state(downed_links={1}, crashed_hosts=set())
        flow = make_flow(1, (0, 1))
        with pytest.raises(SimulationError):
            checker.check_allocation([flow], {1: 5.0}, now=1.0)
