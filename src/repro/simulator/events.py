"""Deterministic event queue for the flow-level simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events at the same timestamp pop
in the order they were scheduled.  ``priority`` lets structurally different
events at the same instant be ordered (e.g. arrivals before reallocation).

The queue also enforces causality at the source: a **monotonic watermark**
tracks the latest popped timestamp, and scheduling an event earlier than
the watermark (beyond float time resolution) raises
:class:`~repro.errors.SimulationError` immediately — at the buggy ``push``
call site — instead of surfacing later as a backwards clock jump.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.timecmp import time_resolution


class EventKind(enum.IntEnum):
    """Kinds of events, in intra-timestamp processing order.

    Values are append-only: fault kinds were added after the original
    three, keeping every zero-fault event ordering byte-identical to
    builds that predate fault injection.
    """

    JOB_ARRIVAL = 0
    FLOW_COMPLETION = 1
    SCHEDULER_UPDATE = 2
    FAULT = 3
    REPAIR = 4


@dataclass(frozen=True)
class Event:
    """A scheduled simulator event."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = None
    #: Allocation epoch at scheduling time; stale completion events
    #: (scheduled under an old rate assignment) are skipped on pop.
    epoch: int = 0


class EventQueue:
    """Min-heap of events with deterministic total ordering."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._size = 0
        #: Latest popped timestamp; pushes may not schedule behind it.
        self._watermark = -math.inf

    def push(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        epoch: int = 0,
    ) -> Event:
        """Schedule an event; returns the Event object.

        Raises :class:`SimulationError` for negative timestamps and for
        *past-time scheduling*: a timestamp behind the pop watermark by
        more than float time resolution can never be processed causally.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        if time < self._watermark - time_resolution(self._watermark):
            raise SimulationError(
                f"cannot schedule event at t={time!r} behind the pop "
                f"watermark t={self._watermark!r}"
            )
        event = Event(time=time, kind=kind, seq=next(self._seq), payload=payload, epoch=epoch)
        heapq.heappush(self._heap, (event.time, int(event.kind), event.seq, event))
        self._size += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event; advances the watermark."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        self._size -= 1
        event = heapq.heappop(self._heap)[3]
        if event.time > self._watermark:
            self._watermark = event.time
        return event

    @property
    def watermark(self) -> float:
        """Latest popped timestamp (``-inf`` before the first pop)."""
        return self._watermark

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest event, or None if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
