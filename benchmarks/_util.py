"""Benchmark sizing helpers (shared by every figure bench)."""

from __future__ import annotations

import os
from typing import Optional


def bench_jobs(default: int) -> int:
    """Workload size for benches; override with REPRO_BENCH_JOBS."""
    return int(os.environ.get("REPRO_BENCH_JOBS", default))


def bench_parallel(default: int = 1) -> int:
    """Worker count for grid-shaped benches; REPRO_BENCH_PARALLEL.

    Results are bit-identical across worker counts (the parity suite
    asserts it), so scaling a bench up only changes wall time.
    """
    return int(os.environ.get("REPRO_BENCH_PARALLEL", default))


def bench_cache_dir() -> Optional[str]:
    """On-disk result cache for benches; REPRO_BENCH_CACHE_DIR."""
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None
