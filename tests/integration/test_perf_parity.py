"""Differential parity for the performance overhaul.

The optimization pass (``__slots__`` hot objects, the ECMP decision
cache, the vectorised water-fill, the bucket event queue) is required to
be *bit-identical* to the historical implementation — not approximately
equal.  Three locks enforce that:

* golden JCT fingerprints: two pinned scenarios, every scheduler, hashed
  with the same blake2b-16 scheme as ``benchmarks/fingerprint_figures.py``.
  The constants below were captured on the pre-overhaul tree; any float
  divergence anywhere in the hot path changes them.
* scalar vs vectorised water-fill: both code paths over the same
  memberships must produce exactly equal rates and residuals.
* heap vs bucket event queue: end-to-end simulation equality.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.experiments.common import ScenarioConfig, build_jobs, run_scenario
from repro.schedulers.registry import make_scheduler
from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    _water_fill_scalar,
    _water_fill_vectorized,
)
from repro.simulator.runtime import CoflowSimulation
from repro.simulator.topology.fattree import FatTreeTopology


def fingerprint(payload: object) -> str:
    """Same scheme as benchmarks/fingerprint_figures.py."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


#: Captured on the pre-overhaul tree (commit cf118a7 lineage); see
#: docs/performance.md for the recapture recipe.
GOLDEN = {
    "q-fbtao": {
        "aalo": "7e4f729a90ddce84f3bc7325ff7f3474",
        "baraat": "57932d1fbe49c570820d5b84e8b0382e",
        "gurita": "611250f574db3fbb606e7f1597447734",
        "pfs": "6c1315fc22e3b9628ec1735c3ea774ca",
        "stream": "0a7b657c14ebc1286945072cad811480",
    },
    "q-tpcds": {
        "aalo": "7244aa75fad3dc7093e392108099ee1c",
        "baraat": "f99c5c15f56d90da723e26a66a4c2510",
        "gurita": "02b394a8ef5244b254da22a855709716",
        "pfs": "3ac755bb7d08d6b0b65a9b92893835b4",
        "stream": "59ef80a0778b6139713f0586cfc01cd7",
    },
}

SCENARIOS = {
    "q-fbtao": ScenarioConfig(
        name="q-fbtao", structure="fb-tao", num_jobs=15, fattree_k=4, seed=7
    ),
    "q-tpcds": ScenarioConfig(
        name="q-tpcds", structure="tpcds", num_jobs=15, fattree_k=4, seed=7,
        arrival_mode="bursty",
    ),
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_golden_jct_fingerprints(scenario):
    outcome = run_scenario(SCENARIOS[scenario])
    got = {
        name: fingerprint(sorted(result.job_completion_times().items()))
        for name, result in outcome.results.items()
    }
    assert got == GOLDEN[scenario]


class TestScalarVectorParity:
    def _random_membership(self, num_flows, num_links, seed):
        rng = np.random.default_rng(seed)
        membership = LinkMembership(num_links)
        for flow_id in range(num_flows):
            hops = int(rng.integers(0, 5))
            route = tuple(
                int(x) for x in rng.choice(num_links, size=hops, replace=False)
            )
            membership.add(flow_id, route)
        return membership

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_rates_and_residuals(self, seed):
        num_links = 24
        rng = np.random.default_rng(1000 + seed)
        caps = rng.uniform(0.0, 10.0, size=num_links)
        caps[:: 6] = 0.0  # fault-revoked links in the mix
        membership_a = self._random_membership(40, num_links, seed)
        membership_b = self._random_membership(40, num_links, seed)
        res_scalar = caps.copy()
        res_vector = caps.copy()
        rates_scalar: dict = {}
        rates_vector: dict = {}
        _water_fill_scalar(membership_a, res_scalar, rates_scalar)
        _water_fill_vectorized(membership_b, res_vector, rates_vector)
        # Exact float equality per flow.  (Dict *insertion order* may
        # differ between the paths — within a round every frozen flow
        # gets the same bottleneck share, so downstream accumulation is
        # order-invariant; the golden fingerprints above pin that
        # end-to-end.)
        assert rates_scalar == rates_vector
        np.testing.assert_array_equal(res_scalar, res_vector)


class TestQueueVariantParity:
    def test_heap_and_bucket_runs_are_identical(self):
        config = ScenarioConfig(
            name="queue-parity", structure="fb-tao", num_jobs=8,
            fattree_k=4, seed=11,
        )
        outcomes = {}
        for variant in ("heap", "bucket"):
            topology = FatTreeTopology(k=config.fattree_k)
            jobs = build_jobs(config, topology.num_hosts)
            result = CoflowSimulation(
                topology, make_scheduler("gurita"), jobs, event_queue=variant
            ).run()
            outcomes[variant] = (
                sorted(result.job_completion_times().items()),
                result.events_processed,
                result.reallocations,
                result.epochs_skipped,
            )
        assert outcomes["heap"] == outcomes["bucket"]
