"""Flow-level discrete-event simulation runtime.

This couples a topology, a routing policy, a scheduling policy, and a
workload (a list of jobs) into one event loop.  As in the paper (§V), the
simulator is *flow-level*: it processes flow arrival and departure events
and recomputes per-flow rates whenever the set of active flows or their
priorities change — no per-packet simulation.

Event loop invariants:

* volumes advance linearly at the current rates between events;
* a reallocation happens after every batch of same-timestamp events and at
  every periodic scheduler update;
* flow-completion events carry the allocation epoch at which they were
  predicted and are skipped if a newer allocation invalidated them.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Union

from repro.errors import NoPathError, SimulationError
from repro.jobs.coflow import Coflow
from repro.jobs.flow import VOLUME_EPSILON, Flow, FlowState
from repro.jobs.job import Job
from repro.schedulers.context import SchedulerContext
from repro.simulator.bandwidth.engine import AllocationState, EngineStats
from repro.simulator.bandwidth.request import dispatch_allocation
from repro.simulator.events import (
    Event,
    EventKind,
    EventQueueBase,
    make_event_queue,
)
from repro.simulator.faults import (
    HR_DELAY,
    HR_DROP,
    POLICY_RESTART,
    FaultAction,
    FaultInjector,
    FaultKind,
    FaultProfile,
    FaultStats,
    default_fault_horizon,
)
from repro.simulator.hotpath import hot_path
from repro.simulator.invariants import (
    InvariantChecker,
    InvariantReport,
    invariants_from_env,
)
from repro.simulator.routing.ecmp import EcmpRouter
from repro.simulator.timecmp import time_resolution
from repro.simulator.topology.base import Topology

#: SCHEDULER_UPDATE payload marking a delayed (fault-injected) HR sync.
_HR_DELAYED_SYNC = "hr-delayed"

_LOG = logging.getLogger(__name__)

if TYPE_CHECKING:  # imported lazily to avoid a package cycle at runtime
    from repro.schedulers.base import SchedulerPolicy

#: Safety valve against runaway simulations.
DEFAULT_MAX_EVENTS = 50_000_000


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    jobs: List[Job]
    makespan: float
    events_processed: int
    reallocations: int
    scheduler_name: str
    #: event batches whose dirty flag stayed clean (reallocation skipped)
    epochs_skipped: int = 0
    #: incremental-engine counters (None when the engine was disabled)
    engine_stats: Optional[EngineStats] = None
    #: invariant-checker outcome (None when the checker was disabled)
    invariant_report: Optional[InvariantReport] = None
    #: fault-injection outcome (None when no fault profile was configured)
    fault_stats: Optional[FaultStats] = None

    def job_completion_times(self) -> Dict[int, float]:
        """JCT per completed job id."""
        out: Dict[int, float] = {}
        for job in self.jobs:
            jct = job.completion_time()
            if jct is not None:
                out[job.job_id] = jct
        return out

    def average_jct(self) -> float:
        """Average job completion time over completed jobs."""
        jcts = list(self.job_completion_times().values())
        if not jcts:
            raise SimulationError("no completed jobs to average")
        return sum(jcts) / len(jcts)

    def coflow_completion_times(self) -> Dict[int, float]:
        """CCT per completed coflow id."""
        out: Dict[int, float] = {}
        for job in self.jobs:
            for coflow in job.coflows:
                cct = coflow.completion_time()
                if cct is not None:
                    out[coflow.coflow_id] = cct
        return out

    def average_cct(self) -> float:
        ccts = list(self.coflow_completion_times().values())
        if not ccts:
            raise SimulationError("no completed coflows to average")
        return sum(ccts) / len(ccts)

    @property
    def all_done(self) -> bool:
        return all(job.completion_time() is not None for job in self.jobs)


class CoflowSimulation:
    """One simulation: topology + router + scheduler + jobs."""

    def __init__(
        self,
        topology: Topology,
        scheduler: SchedulerPolicy,
        jobs: Sequence[Job],
        router: Optional[EcmpRouter] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        use_engine: bool = True,
        check_invariants: Optional[bool] = None,
        strict_invariants: Optional[bool] = None,
        faults: Optional[FaultProfile] = None,
        event_queue: str = "heap",
        checkpoint_every: Optional[float] = None,
        checkpoint_path: Union[str, "os.PathLike[str]", None] = None,
    ) -> None:
        if not jobs:
            raise SimulationError("simulation needs at least one job")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise SimulationError(
                f"checkpoint_every must be positive, got {checkpoint_every!r}"
            )
        if checkpoint_every is not None and checkpoint_path is None:
            raise SimulationError(
                "checkpoint_every requires a checkpoint_path to write to"
            )
        self.topology = topology
        self.scheduler = scheduler
        self.router = router if router is not None else EcmpRouter(topology)
        self.max_events = max_events

        self.jobs: Dict[int, Job] = {}
        self.coflows: Dict[int, Coflow] = {}
        self.flows: Dict[int, Flow] = {}
        for job in jobs:
            if job.job_id in self.jobs:
                raise SimulationError(f"duplicate job id {job.job_id}")
            self.jobs[job.job_id] = job
            for coflow in job.coflows:
                if coflow.coflow_id in self.coflows:
                    raise SimulationError(f"duplicate coflow id {coflow.coflow_id}")
                self.coflows[coflow.coflow_id] = coflow
                for flow in coflow.flows:
                    if flow.flow_id in self.flows:
                        raise SimulationError(f"duplicate flow id {flow.flow_id}")
                    self.flows[flow.flow_id] = flow
                    self.topology.validate_host(flow.src)
                    self.topology.validate_host(flow.dst)

        #: incremental bytes-delivered counter per job (hot-path cache)
        self._job_bytes: Dict[int, float] = {job_id: 0.0 for job_id in self.jobs}
        self._job_of_flow: Dict[int, int] = {
            flow.flow_id: coflow.job_id
            for coflow in self.coflows.values()
            for flow in coflow.flows
        }
        self.scheduler.bind(
            SchedulerContext(self.jobs, self.coflows, self._job_bytes)
        )
        self._queue: EventQueueBase = make_event_queue(event_queue)
        self._capacities = self.topology.links.capacities()
        #: pristine capacity vector; repairs restore revoked links from it
        self._nominal_caps: List[float] = list(self._capacities)
        #: persistent allocation state, fed add/remove/priority deltas;
        #: ``use_engine=False`` selects the from-scratch legacy path (kept
        #: for differential benchmarks and as a correctness oracle).
        self.engine: Optional[AllocationState] = (
            AllocationState(self._capacities) if use_engine else None
        )
        #: opt-in invariant checking (flag wins; env var is the default)
        env_enabled, env_strict = invariants_from_env()
        enabled = env_enabled if check_invariants is None else check_invariants
        strict = env_strict if strict_invariants is None else strict_invariants
        self.invariants: Optional[InvariantChecker] = (
            InvariantChecker(self._capacities, strict=strict) if enabled else None
        )
        self._active: Dict[int, Flow] = {}
        #: cached once: logging guards on hot paths must cost one bool
        #: check, not a logger-hierarchy walk per event
        self._debug = _LOG.isEnabledFor(logging.DEBUG)
        self._now = 0.0
        self._epoch = 0
        self._events_processed = 0
        self._reallocations = 0
        self._epochs_skipped = 0
        self._incomplete_jobs = len(self.jobs)
        self._update_scheduled = False
        #: fault injection (None = perfect fabric; all fault paths inert)
        self.fault_injector: Optional[FaultInjector] = None
        if faults is not None:
            horizon = faults.horizon
            if horizon is None:
                horizon = default_fault_horizon(
                    [job.arrival_time for job in self.jobs.values()]
                )
            self.fault_injector = FaultInjector(faults, topology, horizon)
            # The router filters candidates against the injector's live
            # downed-link set (shared object, not a copy).
            self.router.set_downed_links(self.fault_injector.downed_links)
        #: flows stalled by a partition or crashed endpoint (flow_id -> Flow)
        self._parked: Dict[int, Flow] = {}
        self._parked_since: Dict[int, float] = {}
        #: δ-round counter indexing the HR channel's fault stream
        self._hr_round = 0
        #: flows the fault machinery re-inserted into the engine; unioned
        #: into the next round's priority delta so delta-reporting
        #: policies do not leave them misfiled in the lowest class
        self._forced_priority_delta: Set[int] = set()
        #: True once :meth:`run` has scheduled arrivals, the first update
        #: round, and the fault timeline; a restored simulation comes back
        #: with this set so resuming never re-bootstraps.
        self._started = False
        #: checkpoint cadence (simulated seconds; None = checkpointing off,
        #: the default — a zero-checkpoint run takes none of these paths)
        self._checkpoint_every = checkpoint_every
        self._checkpoint_path = (
            os.fspath(checkpoint_path) if checkpoint_path is not None else None
        )
        self._last_checkpoint_at = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run to completion (or to ``until`` seconds of simulated time).

        The bootstrap — arrival events, the first coordination round,
        the prescheduled fault timeline — happens exactly once: a
        simulation restored from a checkpoint (or re-entered after an
        ``until``-bounded return) resumes the event loop where it
        stopped instead of re-scheduling anything.
        """
        if not self._started:
            self._started = True
            for job in self.jobs.values():
                self._queue.push(job.arrival_time, EventKind.JOB_ARRIVAL, job.job_id)
            interval = self.scheduler.update_interval
            if interval is not None and interval > 0:
                first = min(job.arrival_time for job in self.jobs.values())
                self._queue.push(first + interval, EventKind.SCHEDULER_UPDATE)
                self._update_scheduled = True
            if self.fault_injector is not None:
                # The whole timeline is scheduled up front (it is a pure
                # function of the profile), so every fault/repair sits ahead
                # of the pop watermark by construction.
                for action in self.fault_injector.timeline:
                    kind = EventKind.REPAIR if action.is_repair else EventKind.FAULT
                    self._queue.push(action.time, kind, payload=action)

        while self._queue and self._incomplete_jobs > 0:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            self._step()
            if self._events_processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a starved flow with no rate (check the policy)"
                )
            if (
                self._checkpoint_every is not None
                and self._now - self._last_checkpoint_at >= self._checkpoint_every
                and self._incomplete_jobs > 0
            ):
                self._write_checkpoint()

        if self._incomplete_jobs > 0 and until is None:
            parked = f", {len(self._parked)} flows parked" if self._parked else ""
            raise SimulationError(
                f"simulation stalled with {self._incomplete_jobs} incomplete jobs "
                f"at t={self._now}{parked}"
            )
        if self._debug:
            _LOG.debug(
                "run done: t=%.6f events=%d reallocations=%d skipped=%d",
                self._now, self._events_processed,
                self._reallocations, self._epochs_skipped,
            )
        return SimulationResult(
            jobs=list(self.jobs.values()),
            makespan=self._now,
            events_processed=self._events_processed,
            reallocations=self._reallocations,
            scheduler_name=self.scheduler.name,
            epochs_skipped=self._epochs_skipped,
            engine_stats=(
                self.engine.stats.snapshot() if self.engine is not None else None
            ),
            invariant_report=(
                self.invariants.report() if self.invariants is not None else None
            ),
            fault_stats=(
                self.fault_injector.stats
                if self.fault_injector is not None
                else None
            ),
        )

    @property
    def now(self) -> float:
        return self._now

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    #: Every attribute captured verbatim by :meth:`snapshot_state`.
    #: The queue, scheduler, and engine go through their own
    #: ``snapshot_state`` contracts; ``_debug`` is recomputed on restore
    #: (logger configuration is host state, not simulation state); the
    #: checkpoint cadence settings are supplied fresh by the restore
    #: call.  Enumerating fields explicitly — instead of ``__dict__`` —
    #: also keeps observability probes (which monkeypatch bound methods
    #: like ``_reallocate`` onto the instance) out of snapshots: probes
    #: are host-side instrumentation and do not survive a checkpoint.
    _SNAPSHOT_FIELDS = (
        "topology",
        "router",
        "max_events",
        "jobs",
        "coflows",
        "flows",
        "_job_bytes",
        "_job_of_flow",
        "_capacities",
        "_nominal_caps",
        "invariants",
        "_active",
        "_now",
        "_epoch",
        "_events_processed",
        "_reallocations",
        "_epochs_skipped",
        "_incomplete_jobs",
        "_update_scheduled",
        "fault_injector",
        "_parked",
        "_parked_since",
        "_hr_round",
        "_forced_priority_delta",
        "_started",
    )

    def snapshot_state(self) -> Dict[str, Any]:
        """Capture the complete simulation state for a checkpoint.

        The returned payload is meant to be pickled **whole, in one
        pass** (see :mod:`repro.simulator.checkpoint`): cross-component
        reference sharing — the fault injector's live downed-link set
        aliased by the router, the scheduler context's views onto the
        job/coflow/progress dicts — is preserved by pickle's memo, so a
        restored simulation has exactly the original aliasing without
        any manual rewiring.
        """
        return {
            "fields": {name: getattr(self, name) for name in self._SNAPSHOT_FIELDS},
            "queue": {
                "class": type(self._queue),
                "state": self._queue.snapshot_state(),
            },
            "scheduler": {
                "class": type(self.scheduler),
                "state": self.scheduler.snapshot_state(),
            },
            "engine": (
                self.engine.snapshot_state() if self.engine is not None else None
            ),
        }

    @classmethod
    def restore_state(
        cls,
        state: Dict[str, Any],
        checkpoint_every: Optional[float] = None,
        checkpoint_path: Union[str, "os.PathLike[str]", None] = None,
    ) -> "CoflowSimulation":
        """Rebuild a mid-run simulation from a :meth:`snapshot_state` payload.

        ``checkpoint_every``/``checkpoint_path`` configure the restored
        run's *own* cadence (they are host policy, not snapshot state);
        leave them unset to resume without further checkpointing.
        """
        sim = cls.__new__(cls)
        for name, value in state["fields"].items():
            setattr(sim, name, value)
        queue_cls = state["queue"]["class"]
        queue: EventQueueBase = queue_cls()
        queue.restore_state(state["queue"]["state"])
        sim._queue = queue
        scheduler_cls = state["scheduler"]["class"]
        scheduler = scheduler_cls.__new__(scheduler_cls)
        scheduler.restore_state(state["scheduler"]["state"])
        sim.scheduler = scheduler
        if state["engine"] is None:
            sim.engine = None
        else:
            engine = AllocationState.__new__(AllocationState)
            engine.restore_state(state["engine"])
            sim.engine = engine
        # Host-side attributes, recomputed rather than restored.
        sim._debug = _LOG.isEnabledFor(logging.DEBUG)
        sim._checkpoint_every = checkpoint_every
        sim._checkpoint_path = (
            os.fspath(checkpoint_path) if checkpoint_path is not None else None
        )
        sim._last_checkpoint_at = sim._now
        return sim

    def _write_checkpoint(self) -> None:
        """Write one atomic checkpoint at the current simulated time."""
        # Imported lazily: the checkpoint module imports this one, and a
        # zero-checkpoint run never needs it at all.
        from repro.simulator.checkpoint import write_checkpoint

        assert self._checkpoint_path is not None
        write_checkpoint(self, self._checkpoint_path)
        self._last_checkpoint_at = self._now

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    @hot_path
    def _step(self) -> None:
        """Process every event at the next timestamp, then reallocate."""
        event = self._queue.pop()
        self._events_processed += 1
        if self.invariants is not None:
            self.invariants.check_event_causality(event.time, self._now)
        batch_time = event.time
        self._advance_to(batch_time)
        changed = self._handle(event)

        # Drain all events that share this timestamp.  Events within float
        # time resolution of the batch denote the same simulation instant —
        # exact equality would split them into separate batches, each
        # paying a redundant reallocation.  The queue's has_event_within
        # applies the same timecmp tolerance as its push-side watermark
        # guard, so a batch straddling the watermark can never be split.
        horizon = batch_time + self._time_tick()
        while self._queue.has_event_within(horizon):
            drained = self._queue.pop()
            if self.invariants is not None:
                self.invariants.check_event_causality(drained.time, self._now)
            changed = self._handle(drained) or changed
            self._events_processed += 1

        # A completion prediction landing exactly on schedule also counts.
        changed = self._finish_ripe_flows() or changed

        # update_interval == 0 means "a coordination round after every
        # event batch" (the δ→0 limit); it cannot be event-scheduled
        # because a zero-delay event would re-enter its own batch.
        if self.scheduler.update_interval == 0.0 and self._incomplete_jobs > 0:
            update_changed = self.scheduler.on_update(self._now)
            changed = (
                True if update_changed is None else bool(update_changed)
            ) or changed

        if changed:
            self._reallocate()
        else:
            # Dirty flag stayed clean: the active set and every priority
            # are untouched, so the previous rate assignment still holds.
            self._epochs_skipped += 1
            if self.engine is not None:
                self.engine.stats.epochs_skipped += 1

    @hot_path
    def _advance_to(self, time: float) -> None:
        if time < self._now - 1e-9:
            raise SimulationError(
                f"time went backwards: {self._now} -> {time}"
            )
        elapsed = time - self._now
        if elapsed > 0:
            # Hottest loop in the simulator: every event batch touches every
            # active flow.  Flow.advance is inlined here (identical float
            # arithmetic) to drop a method call and re-reads per flow.
            job_bytes = self._job_bytes
            job_of_flow = self._job_of_flow
            for flow in self._active.values():
                rate = flow.rate
                remaining = flow.remaining_bytes
                delivered = rate * elapsed
                if delivered > remaining:
                    delivered = remaining
                if delivered > 0:
                    job_bytes[job_of_flow[flow.flow_id]] += delivered
                if flow.state is FlowState.ACTIVE:
                    # max(0.0, ...) without the builtin call; <= maps -0.0
                    # to 0.0 exactly like max would.
                    left = remaining - rate * elapsed
                    flow.remaining_bytes = 0.0 if left <= 0.0 else left
        self._now = max(self._now, time)

    @hot_path
    def _handle(self, event: Event) -> bool:
        """Apply one event; returns True if the active flow set changed."""
        if event.kind is EventKind.JOB_ARRIVAL:
            job = self.jobs[event.payload]
            self.scheduler.on_job_arrival(job, self._now)
            for coflow in job.arrive(self._now):
                self._release_coflow(coflow)
            return True
        if event.kind is EventKind.FLOW_COMPLETION:
            # Stale predictions (older epoch) are no-ops; fresh ones are
            # handled by _finish_ripe_flows after the batch drains.
            return event.epoch == self._epoch
        if event.kind is EventKind.SCHEDULER_UPDATE:
            return self._handle_scheduler_update(event)
        if event.kind is EventKind.FAULT:
            return self._apply_fault_action(event.payload)  # simlint: hot-ok[fault path; runs only on FAULT events]
        if event.kind is EventKind.REPAIR:
            return self._apply_repair_action(event.payload)  # simlint: hot-ok[fault path; runs only on REPAIR events]
        raise SimulationError(f"unknown event kind {event.kind!r}")

    def _handle_scheduler_update(self, event: Event) -> bool:
        """One δ-interval coordination round, possibly degraded by faults.

        A dropped round skips ``on_update`` entirely: receivers keep
        scheduling on their last-synced (stale) Ψ̈ view — the paper's
        graceful-degradation regime — and the policy is told via
        ``on_sync_degraded`` so it can apply its staleness bound.  A
        delayed round re-materializes as a one-shot update event (which
        does not reschedule the periodic cadence, so delayed syncs can
        arrive after later rounds: reordering).
        """
        is_delayed_sync = event.payload == _HR_DELAYED_SYNC
        interval = self.scheduler.update_interval
        if (
            not is_delayed_sync
            and self._incomplete_jobs > 0
            and interval is not None
            and interval > 0
        ):
            # Clamp past the batch-draining window so an interval below
            # float time resolution cannot re-enter its own batch.  Four
            # ticks keeps the event outside the horizon *and* outside the
            # timecmp tolerance has_event_within grants around it.
            self._queue.push(
                self._now + max(interval, 4.0 * self._time_tick()),
                EventKind.SCHEDULER_UPDATE,
            )
        injector = self.fault_injector
        if (
            injector is not None
            and injector.profile.hr is not None
            and not is_delayed_sync
        ):
            disposition, delay = injector.hr_disposition(self._hr_round, self._now)
            self._hr_round += 1
            if disposition == HR_DROP:
                changed = self.scheduler.on_sync_degraded(self._now)
                return False if changed is None else bool(changed)
            if disposition == HR_DELAY:
                self._queue.push(
                    self._now + max(delay, 4.0 * self._time_tick()),
                    EventKind.SCHEDULER_UPDATE,
                    payload=_HR_DELAYED_SYNC,
                )
                changed = self.scheduler.on_sync_degraded(self._now)
                return False if changed is None else bool(changed)
        if is_delayed_sync and injector is not None:
            injector.hr_delivered(self._now)
        changed = self.scheduler.on_update(self._now)
        # Policies may report "nothing changed" to skip reallocation.
        return True if changed is None else bool(changed)

    def _release_coflow(self, coflow: Coflow) -> None:
        coflow.release(self._now)
        injector = self.fault_injector
        for flow in coflow.flows:
            if injector is not None and (
                flow.src in injector.crashed_hosts
                or flow.dst in injector.crashed_hosts
            ):
                self._park_flow(flow, in_active=False)  # simlint: hot-ok[fault path; parked flows leave the hot set]
                continue
            # Per-flow fault isolation: one partitioned flow must park,
            # not abort the release of its siblings.
            try:  # simlint: ignore[SIM206] (fault isolation per flow)
                flow.route = self.router.route_flow(flow)
            except NoPathError:
                if injector is None:
                    raise  # a perfect fabric with no route is a topology bug
                self._park_flow(flow, in_active=False)  # simlint: hot-ok[fault path; parked flows leave the hot set]
                continue
            self._active[flow.flow_id] = flow
            if self.engine is not None:
                self.engine.add_flow(flow.flow_id, flow.route)
        self.scheduler.on_coflow_release(coflow, self._now)

    # ------------------------------------------------------------------
    # Fault application (all methods assume an injector is present)
    # ------------------------------------------------------------------
    def _apply_fault_action(self, action: FaultAction) -> bool:
        injector = self.fault_injector
        assert injector is not None
        stats = injector.stats
        stats.faults_injected += 1
        changed = False
        if action.kind in (FaultKind.LINK_DOWN, FaultKind.SWITCH_DOWN):
            newly = injector.links_down(action.links)
            stats.link_down_events += len(newly)
            if action.kind == FaultKind.SWITCH_DOWN:
                stats.switch_failures += 1
            for link_id in newly:
                self._set_link_capacity(link_id, 0.0)
            if newly:
                # The router shares the injector's live downed-link set;
                # its per-generation route caches must be dropped by hand.
                self.router.invalidate_routes()
                self._reroute_after_outage()
                changed = True  # capacity changed even if no flow moved
                if self._debug:
                    _LOG.debug(
                        "t=%.6f fault downed %d links (%d total down)",
                        self._now, len(newly), len(injector.downed_links),
                    )
        elif action.kind == FaultKind.HOST_DOWN:
            newly = injector.hosts_down(action.hosts, action.policy)
            stats.host_crashes += len(newly)
            if newly:
                self._crash_hosts(newly, action.policy)
                self.scheduler.on_hosts_changed(
                    frozenset(injector.crashed_hosts), self._now
                )
                changed = True
        else:
            raise SimulationError(f"unknown fault action kind {action.kind!r}")
        if self.invariants is not None:
            self.invariants.note_fault_state(
                injector.downed_links, injector.crashed_hosts
            )
        return changed

    def _apply_repair_action(self, action: FaultAction) -> bool:
        injector = self.fault_injector
        assert injector is not None
        stats = injector.stats
        stats.repairs_applied += 1
        changed = False
        if action.kind in (FaultKind.LINK_UP, FaultKind.SWITCH_UP):
            restored = injector.links_up(action.links)
            for link_id in restored:
                self._set_link_capacity(link_id, self._nominal_caps[link_id])
            if restored:
                # Repairs mutate the shared downed-link set too: without
                # this, cached alive-route lists would keep flows off
                # their pre-fault paths after the fabric heals.
                self.router.invalidate_routes()
                changed = True
                if self._debug:
                    _LOG.debug(
                        "t=%.6f repair restored %d links (%d still down)",
                        self._now, len(restored), len(injector.downed_links),
                    )
        elif action.kind == FaultKind.HOST_UP:
            recovered = injector.hosts_up(action.hosts)
            if recovered:
                self.scheduler.on_hosts_changed(
                    frozenset(injector.crashed_hosts), self._now
                )
                changed = True
        else:
            raise SimulationError(f"unknown repair action kind {action.kind!r}")
        if changed:
            self._unpark_flows()
        if self.invariants is not None:
            self.invariants.note_fault_state(
                injector.downed_links, injector.crashed_hosts
            )
        return changed

    def _set_link_capacity(self, link_id: int, capacity: float) -> None:
        """Propagate one link's revoked/restored capacity everywhere."""
        self._capacities[link_id] = capacity  # legacy dispatch path
        if self.engine is not None:
            self.engine.set_capacity(link_id, capacity)
        if self.invariants is not None:
            self.invariants.note_capacity(link_id, capacity)

    def _reroute_after_outage(self) -> None:
        """Move active flows off downed links; park the partitioned ones."""
        injector = self.fault_injector
        assert injector is not None
        victims = [
            flow
            for _, flow in sorted(self._active.items())
            if not self.router.route_is_alive(flow.route)
        ]
        for flow in victims:
            try:
                new_route = self.router.route_flow(flow)
            except NoPathError:
                self._park_flow(flow, in_active=True)
                continue
            flow.route = new_route
            if self.engine is not None:
                self.engine.update_route(flow.flow_id, new_route)
            injector.stats.flows_rerouted += 1
            injector.stats.rerouted_bytes += flow.remaining_bytes

    def _crash_hosts(self, hosts: Sequence[int], policy: str) -> None:
        """Abort every active flow with an endpoint on a crashed host."""
        injector = self.fault_injector
        assert injector is not None
        crashed = set(hosts)
        victims = [
            flow
            for _, flow in sorted(self._active.items())
            if flow.src in crashed or flow.dst in crashed
        ]
        for flow in victims:
            if policy == POLICY_RESTART:
                # Restart-from-zero: delivered bytes are discarded, and
                # the job-level progress cache must forget them too or
                # Ψ̈-driven priorities would credit phantom progress.
                discarded = flow.bytes_sent
                if discarded > 0:
                    self._job_bytes[self._job_of_flow[flow.flow_id]] -= discarded
                flow.remaining_bytes = float(flow.size_bytes)
                injector.stats.flow_restarts += 1
                self.scheduler.on_flow_restart(flow, self._now)
            self._park_flow(flow, in_active=True)

    def _park_flow(self, flow: Flow, *, in_active: bool) -> None:
        """Stall a flow until a repair makes it schedulable again.

        Parked flows leave the active set and the allocation engine, so
        the downed-link and crashed-host invariants hold by construction:
        nothing can allocate rate to them or credit them progress.
        """
        injector = self.fault_injector
        assert injector is not None
        if in_active:
            del self._active[flow.flow_id]
            if self.engine is not None:
                self.engine.remove_flow(flow.flow_id)
        flow.rate = 0.0
        self._parked[flow.flow_id] = flow
        self._parked_since[flow.flow_id] = self._now
        injector.stats.flows_parked += 1

    def _unpark_flows(self) -> None:
        """Resume every parked flow the repaired fabric can serve again."""
        injector = self.fault_injector
        assert injector is not None
        for flow_id in sorted(self._parked):
            flow = self._parked[flow_id]
            if (
                flow.src in injector.crashed_hosts
                or flow.dst in injector.crashed_hosts
            ):
                continue
            try:
                route = self.router.route_flow(flow)
            except NoPathError:
                continue  # still partitioned; a later repair may help
            flow.route = route
            del self._parked[flow_id]
            self._active[flow_id] = flow
            if self.engine is not None:
                self.engine.add_flow(flow_id, route)
                # add_flow files the flow in the lowest class; make sure
                # the next allocation re-files it under its true class
                # even for policies that report precise priority deltas.
                self._forced_priority_delta.add(flow_id)
            injector.stats.flows_recovered += 1
            injector.stats.recovery_seconds.append(
                self._now - self._parked_since.pop(flow_id)
            )

    def _time_tick(self) -> float:
        """The smallest representable time step at the current clock.

        Flows whose remaining transfer time falls below this cannot make
        float-visible progress and must be treated as complete, or the
        completion event would re-fire at the same timestamp forever.
        """
        return time_resolution(self._now)

    @hot_path
    def _finish_ripe_flows(self) -> bool:
        """Complete every active flow whose volume has drained (or whose
        remaining transfer time is below float time resolution)."""
        tick = self._time_tick()
        ripe = [
            f
            for f in self._active.values()
            if f.remaining_bytes <= VOLUME_EPSILON
            or f.remaining_bytes <= f.rate * tick
        ]
        if not ripe:
            return False
        for flow in ripe:
            flow.finish(self._now)
            del self._active[flow.flow_id]
            if self.engine is not None:
                self.engine.remove_flow(flow.flow_id)
            self.scheduler.on_flow_finish(flow, self._now)
            coflow = self.coflows[flow.coflow_id]
            if coflow.maybe_complete(self._now):
                self.scheduler.on_coflow_finish(coflow, self._now)
                job = self.jobs[coflow.job_id]
                for dependent in job.releasable_after(coflow.coflow_id):
                    self._release_coflow(dependent)
                if job.maybe_complete(self._now):
                    self._incomplete_jobs -= 1
                    self.scheduler.on_job_finish(job, self._now)
        # Releasing dependents may have unlocked flows that are themselves
        # zero-volume corner cases; they get caught on the next round.
        return True

    @hot_path
    def _reallocate(self) -> None:
        """Ask the scheduler for priorities and recompute all rates."""
        self._epoch += 1
        self._reallocations += 1
        active = list(self._active.values())
        if not active:
            return
        request = self.scheduler.allocation(active, self._now)
        priority_delta = self.scheduler.consume_priority_delta()
        if self._forced_priority_delta:
            if priority_delta is not None:
                priority_delta = priority_delta | frozenset(
                    self._forced_priority_delta
                )
            self._forced_priority_delta.clear()
        if self.engine is not None:
            rates = self.engine.allocate(request, priority_delta=priority_delta)
        else:
            flow_routes = {f.flow_id: f.route for f in active}
            rates = dispatch_allocation(request, flow_routes, self._capacities)
        if self.invariants is not None:
            self.invariants.check_allocation(active, rates, self._now)
            if self.engine is not None:
                self.invariants.maybe_audit_engine(
                    self.engine, active, request, self._now
                )
        next_completion: Optional[float] = None
        for flow in active:
            flow.priority = request.priorities.get(flow.flow_id, flow.priority)
            flow.rate = rates.get(flow.flow_id, 0.0)
            if flow.rate > 0:
                eta = self._now + flow.remaining_bytes / flow.rate
                if next_completion is None or eta < next_completion:
                    next_completion = eta
        if next_completion is not None:
            # Clamp below float time resolution so the event strictly
            # advances the clock; the ripeness test completes such flows.
            next_completion = max(next_completion, self._now + self._time_tick())
            self._queue.push(
                next_completion, EventKind.FLOW_COMPLETION, epoch=self._epoch
            )
        elif not self._queue:
            raise SimulationError(
                f"deadlock at t={self._now}: {len(active)} active flows, "
                "all at rate zero and no pending events"
            )


def simulate(
    topology: Topology,
    scheduler: SchedulerPolicy,
    jobs: Sequence[Job],
    router: Optional[EcmpRouter] = None,
    until: Optional[float] = None,
    use_engine: bool = True,
    faults: Optional[FaultProfile] = None,
    event_queue: str = "heap",
    checkpoint_every: Optional[float] = None,
    checkpoint_path: Union[str, "os.PathLike[str]", None] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`CoflowSimulation` and run it."""
    return CoflowSimulation(
        topology, scheduler, jobs, router=router, use_engine=use_engine,
        faults=faults, event_queue=event_queue,
        checkpoint_every=checkpoint_every, checkpoint_path=checkpoint_path,
    ).run(until=until)
