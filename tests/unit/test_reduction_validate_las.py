"""Unit tests for the FFS-MJ reduction, workload validation, and LAS."""

import pytest

from repro.errors import ReproError
from repro.jobs import JobBuilder, chain_job, single_stage_job
from repro.jobs.validate import validate_workload
from repro.schedulers.base import SchedulerContext
from repro.schedulers.las import LasScheduler
from repro.simulator.bandwidth.request import AllocationMode
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.theory.exact import schedule_by_order
from repro.theory.reduction import (
    job_to_ffs,
    jobs_to_ffs_instance,
    optimal_total_jct,
)


class TestReduction:
    def test_flows_become_operations(self, ids):
        job = single_stage_job([(0, 2, 10.0), (1, 3, 20.0)], ids=ids)
        ffs = job_to_ffs(job, processing_rate=10.0, layer_of_host={})
        assert len(ffs.coflows) == 1
        durations = sorted(op.duration for op in ffs.coflows[0].operations)
        assert durations == pytest.approx([1.0, 2.0])

    def test_receiver_layers_shared_across_jobs(self, ids):
        a = single_stage_job([(0, 5, 10.0)], ids=ids)
        b = single_stage_job([(1, 5, 10.0)], ids=ids)
        layers = {}
        ffs_a = job_to_ffs(a, 1.0, layers)
        ffs_b = job_to_ffs(b, 1.0, layers)
        assert len(layers) == 1  # both reduce onto receiver 5's machine
        assert (
            ffs_a.coflows[0].operations[0].layer
            == ffs_b.coflows[0].operations[0].layer
        )

    def test_dependencies_carry_over(self, ids):
        job = chain_job([[(0, 1, 5.0)], [(1, 2, 5.0)]], ids=ids)
        ffs = job_to_ffs(job, 1.0, {})
        by_id = {c.coflow_id: c for c in ffs.coflows}
        assert by_id[1].depends_on == (0,)

    def test_release_time_preserved(self, ids):
        job = single_stage_job([(0, 1, 5.0)], arrival_time=3.0, ids=ids)
        assert job_to_ffs(job, 1.0, {}).release_time == 3.0

    def test_instance_reduction_and_schedule(self, ids):
        jobs = [
            single_stage_job([(0, 2, 4.0)], ids=ids),
            single_stage_job([(1, 2, 2.0)], ids=ids),
        ]
        instance = jobs_to_ffs_instance(jobs, processing_rate=1.0)
        # Both reduce onto receiver 2's machine: serial processing.
        short_first = schedule_by_order(
            instance, (jobs[1].job_id, jobs[0].job_id)
        )
        assert short_first.total_jct == pytest.approx(2.0 + 6.0)

    def test_optimal_matches_sjf_on_shared_receiver(self, ids):
        jobs = [
            single_stage_job([(0, 2, 4.0)], ids=ids),
            single_stage_job([(1, 2, 2.0)], ids=ids),
        ]
        best, _instance = optimal_total_jct(jobs, processing_rate=1.0)
        assert best.order == (jobs[1].job_id, jobs[0].job_id)

    def test_validation(self, ids):
        job = single_stage_job([(0, 1, 1.0)], ids=ids)
        with pytest.raises(ReproError):
            job_to_ffs(job, 0.0, {})
        with pytest.raises(ReproError):
            job_to_ffs(job, 1.0, {}, layer_model="bogus")
        with pytest.raises(ReproError):
            jobs_to_ffs_instance([], 1.0)


class TestValidateWorkload:
    def test_clean_workload_passes(self, ids):
        jobs = [single_stage_job([(0, 1, 1.0)], ids=ids)]
        report = validate_workload(jobs, num_hosts=4)
        assert report.ok
        report.raise_if_invalid()  # no-op

    def test_out_of_range_host_reported(self, ids):
        jobs = [single_stage_job([(0, 9, 1.0)], ids=ids)]
        report = validate_workload(jobs, num_hosts=4)
        assert not report.ok
        assert any("host 9" in error for error in report.errors)
        with pytest.raises(Exception):
            report.raise_if_invalid()

    def test_duplicate_ids_reported(self, ids):
        job = single_stage_job([(0, 1, 1.0)], ids=ids)
        report = validate_workload([job, job], num_hosts=4)
        assert any("duplicate job id" in error for error in report.errors)

    def test_topology_supplies_host_count(self, ids):
        jobs = [single_stage_job([(0, 5, 1.0)], ids=ids)]
        topo = BigSwitchTopology(4)
        report = validate_workload(jobs, topology=topo)
        assert not report.ok

    def test_deep_job_warns(self, ids):
        stages = [[(i, i + 1, 1.0)] for i in range(12)]
        jobs = [chain_job(stages, ids=ids)]
        report = validate_workload(jobs, num_hosts=32)
        assert report.ok  # warning, not error
        assert any("stages" in warning for warning in report.warnings)

    def test_empty_workload_is_error(self):
        assert not validate_workload([], num_hosts=4).ok


class TestLas:
    def test_per_flow_demotion_ignores_coflow(self, ids):
        # One coflow with a heavy and a light flow: LAS splits them
        # across classes — no coflow awareness.
        builder = JobBuilder(ids=ids)
        builder.add_coflow([(0, 2, 1e9), (1, 3, 1e5)])
        job = builder.build()
        coflow = job.coflows[0]
        for f in job.arrive(0.0):
            f.release(0.0)
        heavy, light = coflow.flows
        heavy.rate = 1e8
        heavy.advance(20.0)  # 2 GB... clamped to size; enough to demote
        scheduler = LasScheduler()
        scheduler.bind(
            SchedulerContext({job.job_id: job}, {coflow.coflow_id: coflow})
        )
        request = scheduler.allocation(coflow.flows, 1.0)
        assert request.mode is AllocationMode.SPQ
        assert request.priorities[heavy.flow_id] > request.priorities[light.flow_id]
