"""Equal-Cost Multi-Path routing by flow hashing.

ECMP load-balances flows over the equal-cost route candidates the topology
exposes.  Like real switches, the choice is a deterministic hash of the
flow identity, so a given flow always takes the same path (no packet
reordering) while distinct flows spread across paths.

The router is link-state aware: with a set of downed links attached (via
:meth:`EcmpRouter.set_downed_links`), dead candidates are filtered out and
the hash re-lands on the surviving ones — the same withdraw-and-rehash
behaviour real ECMP gives when a next-hop is pruned.  When *every*
candidate is down the router raises the typed
:class:`~repro.errors.NoPathError` (never a ``ZeroDivisionError`` or
``IndexError`` from a modulo over an empty list), so callers can park the
flow until a repair restores connectivity.  Because candidate filtering
preserves index order, repairs are exact inverses: once the downed set
empties, every flow hashes back onto the route it held before the fault.

Route decisions are cached.  Topology route candidates are immutable, so
the perfect-fabric memo ``(src, dst, selector mod choices) -> route`` never
expires; the per-pair alive-candidate lists are valid only for one
link-state *generation* and are dropped by :meth:`EcmpRouter.
invalidate_routes`, which the runtime calls on every fault **and** every
repair (the downed-link set is shared live with the fault injector, so the
router cannot observe mutations on its own).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import NoPathError
from repro.jobs.flow import Flow
from repro.simulator.hotpath import hot_path
from repro.simulator.topology.base import Topology

#: Knuth multiplicative-hash constant (2^64 / golden ratio).
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


def flow_hash(flow_id: int, src: int, dst: int, salt: int = 0) -> int:
    """Deterministic 64-bit hash of a flow's identity.

    Real ECMP hashes the 5-tuple; the simulator's analogue is
    (flow id, src host, dst host) plus an optional salt used to vary the
    hash function across experiments.
    """
    value = (flow_id * 1_000_003 + src * 10_007 + dst * 101 + salt) & _HASH_MASK
    value = (value * _HASH_MULTIPLIER) & _HASH_MASK
    value ^= value >> 29
    value = (value * _HASH_MULTIPLIER) & _HASH_MASK
    value ^= value >> 32
    return value


def select_route(
    candidates: List[Tuple[int, ...]], selector: int
) -> Tuple[int, ...]:
    """The ``selector``-th candidate, guarded against empty lists.

    Raises :class:`NoPathError` instead of tripping ``% 0`` when the
    candidate list has been filtered down to nothing.
    """
    if not candidates:
        raise NoPathError("no route candidates available")
    return candidates[selector % len(candidates)]


class EcmpRouter:
    """Routes flows over a topology by hashing them onto path candidates."""

    def __init__(self, topology: Topology, salt: int = 0) -> None:
        self.topology = topology
        self.salt = salt
        #: Live view of downed link ids; shared with the fault injector
        #: (the same set object) so outages are visible without copying.
        self._downed_links: Optional[Set[int]] = None
        #: Link-state generation; bumped on every invalidation so stale
        #: cached routes are structurally unreachable.
        self._links_generation = 0
        #: Perfect-fabric memo: (src, dst, selector mod choices) -> route.
        #: Topology candidates are immutable, so this never expires.
        self._route_cache: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
        #: (src, dst) -> number of candidates; immutable like the routes.
        self._choices_cache: Dict[Tuple[int, int], int] = {}
        #: (src, dst) -> alive candidates for the *current* generation only.
        self._alive_cache: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}

    def set_downed_links(self, downed: Optional[Set[int]]) -> None:
        """Attach the live downed-link set (``None`` = perfect fabric)."""
        self._downed_links = downed
        self.invalidate_routes()

    def invalidate_routes(self) -> None:
        """Drop link-state-dependent route decisions (new generation).

        Must be called whenever the attached downed-link set mutates —
        on faults *and* on repairs.  Missing the repair-side call would
        keep flows off their pre-fault paths forever; the chaos parity
        suite locks in the withdraw-and-rehash round trip.
        """
        self._links_generation += 1
        self._alive_cache.clear()

    @property
    def links_generation(self) -> int:
        """Monotonic counter of link-state invalidations (for tests)."""
        return self._links_generation

    @property
    def downed_links(self) -> FrozenSet[int]:
        """The currently downed link ids (empty on a perfect fabric)."""
        return frozenset(self._downed_links or ())

    @hot_path
    def route_flow(self, flow: Flow) -> Tuple[int, ...]:
        """Pick the flow's route; deterministic per flow identity.

        With downed links present, candidates traversing them are
        withdrawn and the flow's hash re-lands on the survivors — so a
        repaired fabric routes exactly as if the fault never happened,
        and a fully partitioned pair raises :class:`NoPathError`.
        """
        selector = flow_hash(flow.flow_id, flow.src, flow.dst, self.salt)
        downed = self._downed_links
        if not downed:
            # Perfect-fabric fast path: byte-identical to the historical
            # router, including its modulo-by-zero guard below.
            choices = self._num_choices(flow.src, flow.dst)
            if choices <= 0:
                raise NoPathError(
                    f"topology exposes no route candidates for "
                    f"{flow.src}->{flow.dst}"
                )
            key = (flow.src, flow.dst, selector % choices)
            route = self._route_cache.get(key)
            if route is None:
                route = self.topology.route(flow.src, flow.dst, selector)
                self._route_cache[key] = route
            return route
        alive = self.alive_routes(flow.src, flow.dst)
        if not alive:
            raise NoPathError(
                f"all routes {flow.src}->{flow.dst} are down "
                f"({len(downed)} links failed): network partition"
            )
        return alive[selector % len(alive)]

    def _num_choices(self, src: int, dst: int) -> int:
        """Memoized ``topology.num_route_choices`` (candidate sets are static)."""
        key = (src, dst)
        choices = self._choices_cache.get(key)
        if choices is None:
            choices = self.topology.num_route_choices(src, dst)
            self._choices_cache[key] = choices
        return choices

    def alive_routes(self, src: int, dst: int) -> List[Tuple[int, ...]]:
        """Every candidate route avoiding downed links, in selector order.

        Selector order (candidate index order) is what makes rerouting
        deterministic: every caller filtering the same link state sees
        the same surviving list in the same order.  Results are cached
        per (src, dst) for the current link-state generation.
        """
        key = (src, dst)
        cached = self._alive_cache.get(key)
        if cached is not None:
            return cached
        downed = self._downed_links or set()
        choices = self._num_choices(src, dst)
        alive: List[Tuple[int, ...]] = []
        for index in range(choices):
            route = self.topology.route(src, dst, index)
            # set.isdisjoint short-circuits in C; the equivalent
            # any()-genexp allocated a generator per candidate route.
            if downed.isdisjoint(route):
                alive.append(route)
        self._alive_cache[key] = alive
        return alive

    def route_is_alive(self, route: Tuple[int, ...]) -> bool:
        """Whether a previously assigned route avoids all downed links."""
        downed = self._downed_links
        if not downed:
            return True
        return downed.isdisjoint(route)
