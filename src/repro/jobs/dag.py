"""Coflow dependency DAG of a multi-stage job.

The paper models a job as ``G = (V, E)`` where vertices are coflows and an
edge ``(c_u, c_v)`` means that *c_v depends on c_u*: coflow ``c_v`` can only
start once ``c_u`` has completed (paper §II, Figure 1).  Leaves (coflows with
no dependencies) form stage 1; the stage of any coflow is one plus the
deepest stage among its dependencies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import DagCycleError, InvalidJobError


class CoflowDag:
    """Dependency graph over a job's coflow ids.

    The graph is immutable once validated.  Edges are stored as
    ``dependencies[v] = {u, ...}``: the coflows that must complete before
    ``v`` may start.
    """

    def __init__(
        self,
        coflow_ids: Sequence[int],
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        """Build a DAG over ``coflow_ids`` with ``edges = (u, v)`` pairs,
        each meaning *v depends on u*.
        """
        self._nodes: List[int] = list(coflow_ids)
        node_set = set(self._nodes)
        if len(node_set) != len(self._nodes):
            raise InvalidJobError("duplicate coflow ids in DAG")
        self._dependencies: Dict[int, Set[int]] = {cid: set() for cid in self._nodes}
        self._dependents: Dict[int, Set[int]] = {cid: set() for cid in self._nodes}
        for u, v in edges:
            if u not in node_set or v not in node_set:
                raise InvalidJobError(f"edge ({u}, {v}) references unknown coflow")
            if u == v:
                raise DagCycleError(f"self-dependency on coflow {u}")
            self._dependencies[v].add(u)
            self._dependents[u].add(v)
        self._order = self._topological_order()
        self._stages = self._compute_stages()

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def coflow_ids(self) -> List[int]:
        return list(self._nodes)

    def dependencies_of(self, coflow_id: int) -> Set[int]:
        """Coflows that must complete before ``coflow_id`` starts."""
        return set(self._dependencies[coflow_id])

    def dependents_of(self, coflow_id: int) -> Set[int]:
        """Coflows that wait on ``coflow_id``."""
        return set(self._dependents[coflow_id])

    def leaves(self) -> List[int]:
        """Coflows with no dependencies (stage 1; first to be processed)."""
        return [cid for cid in self._nodes if not self._dependencies[cid]]

    def roots(self) -> List[int]:
        """Coflows nothing depends on (the job's outputs)."""
        return [cid for cid in self._nodes if not self._dependents[cid]]

    def topological_order(self) -> List[int]:
        """Coflow ids in an order where dependencies precede dependents."""
        return list(self._order)

    def stage_of(self, coflow_id: int) -> int:
        """1-indexed stage: leaves are 1, each dependent one deeper."""
        return self._stages[coflow_id]

    @property
    def num_stages(self) -> int:
        """Depth dimension: the number of computation stages in the job."""
        return max(self._stages.values()) if self._stages else 0

    def coflows_in_stage(self, stage: int) -> List[int]:
        """All coflows at the given 1-indexed stage."""
        return [cid for cid in self._nodes if self._stages[cid] == stage]

    def edges(self) -> List[Tuple[int, int]]:
        """All (u, v) edges where v depends on u."""
        return [
            (u, v)
            for v, deps in self._dependencies.items()
            for u in sorted(deps)
        ]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, coflow_id: int) -> bool:
        return coflow_id in self._dependencies

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _topological_order(self) -> List[int]:
        indegree = {cid: len(deps) for cid, deps in self._dependencies.items()}
        queue = deque(cid for cid in self._nodes if indegree[cid] == 0)
        order: List[int] = []
        while queue:
            cid = queue.popleft()
            order.append(cid)
            for dep in sorted(self._dependents[cid]):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(self._nodes):
            raise DagCycleError("coflow dependency graph contains a cycle")
        return order

    def _compute_stages(self) -> Dict[int, int]:
        stages: Dict[int, int] = {}
        for cid in self._order:
            deps = self._dependencies[cid]
            stages[cid] = 1 + max((stages[d] for d in deps), default=0)
        return stages
