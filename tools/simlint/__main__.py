"""Command-line entry point: ``python -m tools.simlint [paths...]``.

Exit codes: 0 = clean, 1 = findings, 2 = usage / parse error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.simlint.rules import ALL_RULES
from tools.simlint.runner import SimlintUsageError, lint_paths, select_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Simulator-aware static analysis for the Gurita reproduction "
            "(determinism and conservation failure classes)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scopes) if rule.scopes else "all files"
            print(f"{rule.code}  [{scope}]")
            print(f"    {rule.description}")
        return EXIT_CLEAN
    try:
        rules = select_rules(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
        report = lint_paths(args.paths, rules=rules)
    except SimlintUsageError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(report.render_json() if args.json else report.render_human())
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
