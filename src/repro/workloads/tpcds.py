"""TPC-DS query-42 job structure (the paper's Cloudera benchmark DAG).

TPC-DS query 42 aggregates store sales by category for one month: three
table scans feed two joins, whose output is aggregated and then sorted.
As a multi-stage shuffle DAG (the form the paper uses to stitch trace
coflows into jobs) this is a five-stage, six-coflow tree-ish shape::

    scan(date_dim)  scan(store_sales)   scan(item)
            \\            /                 |
             join_1 ----+                  |
                  \\                       /
                   +------ join_2 -------+
                              |
                           aggregate
                              |
                            sort

Relative shuffle volumes reflect the query's selectivity: the fact-table
scan dominates, each join shrinks its input, and the aggregate/sort
stages move little data.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.shapes import DagShape

#: Node indices in the query-42 DAG.
SCAN_DATE_DIM = 0
SCAN_STORE_SALES = 1
SCAN_ITEM = 2
JOIN_DATE_SALES = 3
JOIN_ITEM = 4
AGGREGATE = 5
SORT = 6

#: Relative bytes each node shuffles, normalised to the largest (the
#: store_sales fact scan).  Dimension scans are small; joins shrink data;
#: the final aggregate/sort stages are nearly free.
RELATIVE_VOLUMES: Tuple[float, ...] = (
    0.02,  # scan date_dim (small dimension table)
    1.00,  # scan store_sales (fact table)
    0.05,  # scan item
    0.40,  # join date_dim x store_sales
    0.20,  # join with item
    0.05,  # group-by aggregation
    0.01,  # order-by + limit
)


def query42_shape() -> DagShape:
    """The dependency DAG of TPC-DS query 42 (7 coflows, depth 5)."""
    edges: List[Tuple[int, int]] = [
        (SCAN_DATE_DIM, JOIN_DATE_SALES),
        (SCAN_STORE_SALES, JOIN_DATE_SALES),
        (JOIN_DATE_SALES, JOIN_ITEM),
        (SCAN_ITEM, JOIN_ITEM),
        (JOIN_ITEM, AGGREGATE),
        (AGGREGATE, SORT),
    ]
    return DagShape(name="tpcds-q42", num_nodes=7, edges=tuple(edges))


def query42_volumes(total_bytes: float) -> List[float]:
    """Split a job's total bytes over the 7 nodes per the query's shape."""
    weight_sum = sum(RELATIVE_VOLUMES)
    return [total_bytes * w / weight_sum for w in RELATIVE_VOLUMES]
