"""Datacenter network topologies: big-switch fabric and k-pod FatTree."""

from repro.simulator.topology.base import Topology
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.simulator.topology.fattree import FatTreeTopology
from repro.simulator.topology.links import TEN_GBPS, Link, LinkTable

__all__ = [
    "BigSwitchTopology",
    "FatTreeTopology",
    "Link",
    "LinkTable",
    "TEN_GBPS",
    "Topology",
]
