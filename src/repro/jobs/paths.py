"""Paths and critical paths through a job's coflow DAG.

The paper (§III.A) defines the JCT of a multi-stage job through the set of
paths from leaf coflows to root coflows: ``T_j = max over paths of T(path)``
where ``T(path)`` sums the per-coflow completion times along the path.  The
*critical path* is the arg-max; increasing the CCT of any coflow on it
increases the JCT.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.jobs.dag import CoflowDag
from repro.jobs.job import Job


def enumerate_paths(dag: CoflowDag, limit: int = 100_000) -> List[Tuple[int, ...]]:
    """Enumerate all leaf-to-root paths of the DAG.

    Paths are returned as tuples of coflow ids ordered leaf -> root.  The
    number of paths can be exponential in pathological DAGs, so ``limit``
    bounds the enumeration; exceeding it raises ``ValueError``.
    """
    paths: List[Tuple[int, ...]] = []
    root_set = set(dag.roots())

    def extend(prefix: List[int]) -> None:
        last = prefix[-1]
        if last in root_set:
            paths.append(tuple(prefix))
            if len(paths) > limit:
                raise ValueError(f"more than {limit} leaf-to-root paths")
            return
        for dep in sorted(dag.dependents_of(last)):
            extend(prefix + [dep])

    for leaf in dag.leaves():
        extend([leaf])
    return paths


def critical_path(
    dag: CoflowDag,
    cost: Callable[[int], float],
) -> Tuple[Tuple[int, ...], float]:
    """Longest leaf-to-root path under per-coflow ``cost``.

    Runs in linear time via dynamic programming over the topological order
    (equivalent to the breadth-first pass the paper mentions), so it works
    even when explicit path enumeration would blow up.

    Returns ``(path, total_cost)`` with the path ordered leaf -> root.
    """
    best_cost: Dict[int, float] = {}
    best_pred: Dict[int, int] = {}
    for cid in dag.topological_order():
        deps = dag.dependencies_of(cid)
        if deps:
            pred = max(deps, key=lambda d: best_cost[d])
            best_cost[cid] = best_cost[pred] + cost(cid)
            best_pred[cid] = pred
        else:
            best_cost[cid] = cost(cid)
    if not best_cost:
        return (), 0.0
    end = max(dag.roots(), key=lambda r: best_cost[r])
    path: List[int] = [end]
    while path[-1] in best_pred:
        path.append(best_pred[path[-1]])
    path.reverse()
    return tuple(path), best_cost[end]


def critical_path_coflows(
    job: Job,
    processing_rate: float = 1.0,
) -> Tuple[Tuple[int, ...], float]:
    """Clairvoyant critical path of a job.

    Per the paper (§IV.B), each coflow's CCT is approximated as
    ``max flow size / processing rate`` and the critical path is the
    longest-cost leaf-to-root path under that estimate.
    """
    if processing_rate <= 0:
        raise ValueError("processing_rate must be positive")

    def cost(coflow_id: int) -> float:
        return job.coflow(coflow_id).max_flow_bytes / processing_rate

    return critical_path(job.dag, cost)


def path_cost(
    dag: CoflowDag,
    path: Sequence[int],
    cost: Callable[[int], float],
) -> float:
    """Sum of per-coflow costs along a path (must be a valid chain)."""
    for earlier, later in zip(path, path[1:]):
        if earlier not in dag.dependencies_of(later):
            raise ValueError(f"({earlier}, {later}) is not an edge of the DAG")
    return sum(cost(cid) for cid in path)
