"""Unit tests for the incremental allocation engine."""

import pytest

from repro.simulator.bandwidth.engine import AllocationState, EngineStats
from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    allocate_maxmin,
    membership_rebuilds,
    reset_membership_rebuilds,
)
from repro.simulator.bandwidth.request import (
    AllocationMode,
    AllocationRequest,
    dispatch_allocation,
)

CAPS = [10.0, 4.0, 8.0]

ROUTES = {1: (0,), 2: (0, 1), 3: (1,), 4: (2,)}


def fresh_state(routes=ROUTES, caps=CAPS):
    state = AllocationState(caps)
    for flow_id, route in routes.items():
        state.add_flow(flow_id, route)
    return state


class TestLinkMembership:
    def test_add_and_remove_keep_counts_consistent(self):
        membership = LinkMembership(3)
        membership.add(1, (0, 1))
        membership.add(2, (1,))
        assert list(membership.counts) == [1, 2, 0]
        assert list(membership.link_members[1]) == [1, 2]
        membership.remove(1)
        assert list(membership.counts) == [0, 1, 0]
        assert 0 not in membership.link_members
        assert len(membership) == 1 and 2 in membership

    def test_duplicate_add_rejected(self):
        membership = LinkMembership(1)
        membership.add(1, (0,))
        with pytest.raises(ValueError):
            membership.add(1, (0,))

    def test_remove_unknown_flow_raises(self):
        with pytest.raises(KeyError):
            LinkMembership(1).remove(99)

    def test_from_routes_counts_rebuilds(self):
        reset_membership_rebuilds()
        LinkMembership.from_routes({1: (0,)}, 1)
        LinkMembership.from_routes({}, 1)  # empty builds are free
        assert membership_rebuilds() == 1


class TestMaxminPath:
    def test_matches_legacy_allocation(self):
        state = fresh_state()
        rates = state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
        assert rates == allocate_maxmin(ROUTES, CAPS)

    def test_cache_hit_on_unchanged_state(self):
        state = fresh_state()
        request = AllocationRequest(mode=AllocationMode.MAXMIN)
        first = state.allocate(request)
        second = state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
        assert second is first
        assert state.stats.cache_hits == 1
        assert state.stats.allocations == 2

    def test_add_flow_invalidates_cache(self):
        state = fresh_state()
        request = AllocationRequest(mode=AllocationMode.MAXMIN)
        state.allocate(request)
        state.add_flow(9, (2,))
        rates = state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
        assert state.stats.cache_hits == 0
        expected = dict(ROUTES)
        expected[9] = (2,)
        assert rates == allocate_maxmin(expected, CAPS)

    def test_remove_flow_invalidates_cache(self):
        state = fresh_state()
        state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
        state.remove_flow(2)
        rates = state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
        remaining = {f: r for f, r in ROUTES.items() if f != 2}
        assert rates == allocate_maxmin(remaining, CAPS)

    def test_no_membership_rebuilds_after_setup(self):
        state = fresh_state()
        reset_membership_rebuilds()
        for _ in range(5):
            state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
            state.add_flow(100, (1,))
            state.allocate(AllocationRequest(mode=AllocationMode.MAXMIN))
            state.remove_flow(100)
        assert membership_rebuilds() == 0


def _request(mode, priorities, **kwargs):
    return AllocationRequest(mode=mode, priorities=dict(priorities), **kwargs)


PRIORITIES = {1: 0, 2: 1, 3: 0, 4: 2}


class TestPriorityModes:
    @pytest.mark.parametrize("mode", [AllocationMode.SPQ, AllocationMode.WRR])
    def test_matches_legacy_dispatch(self, mode):
        state = fresh_state()
        request = _request(mode, PRIORITIES)
        rates = state.allocate(request)
        expected = dispatch_allocation(_request(mode, PRIORITIES), ROUTES, CAPS)
        assert rates == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("mode", [AllocationMode.SPQ, AllocationMode.WRR])
    def test_priority_change_recomputes(self, mode):
        state = fresh_state()
        state.allocate(_request(mode, PRIORITIES))
        moved = {**PRIORITIES, 2: 3}
        rates = state.allocate(_request(mode, moved))
        expected = dispatch_allocation(_request(mode, moved), ROUTES, CAPS)
        assert rates == pytest.approx(expected, abs=1e-12)
        # The move was applied incrementally, not via a second rebuild.
        assert state.stats.full_rebuilds == 1

    def test_unchanged_priorities_cache_hit(self):
        state = fresh_state()
        first = state.allocate(_request(AllocationMode.SPQ, PRIORITIES))
        second = state.allocate(_request(AllocationMode.SPQ, PRIORITIES))
        assert second is first
        assert state.stats.cache_hits == 1

    def test_empty_delta_hint_is_cache_hit(self):
        state = fresh_state()
        state.allocate(_request(AllocationMode.SPQ, PRIORITIES))
        # Different dict identity, but the policy vouches nothing changed.
        rates = state.allocate(
            _request(AllocationMode.SPQ, PRIORITIES), priority_delta=frozenset()
        )
        assert state.stats.cache_hits == 1
        assert rates == state.allocate(_request(AllocationMode.SPQ, PRIORITIES))

    def test_delta_hint_matches_full_diff(self):
        hinted = fresh_state()
        diffed = fresh_state()
        hinted.allocate(
            _request(AllocationMode.WRR, PRIORITIES),
            priority_delta=frozenset(PRIORITIES),
        )
        diffed.allocate(_request(AllocationMode.WRR, PRIORITIES))
        moved = {**PRIORITIES, 3: 2}
        via_hint = hinted.allocate(
            _request(AllocationMode.WRR, moved), priority_delta=frozenset({3})
        )
        via_diff = diffed.allocate(_request(AllocationMode.WRR, moved))
        assert via_hint == pytest.approx(via_diff, abs=1e-12)

    def test_delta_hint_with_finished_flow_is_ignored(self):
        state = fresh_state()
        state.allocate(_request(AllocationMode.SPQ, PRIORITIES))
        state.remove_flow(4)
        remaining = {f: c for f, c in PRIORITIES.items() if f != 4}
        rates = state.allocate(
            _request(AllocationMode.SPQ, remaining),
            priority_delta=frozenset({4}),  # stale report: flow 4 finished
        )
        routes = {f: r for f, r in ROUTES.items() if f != 4}
        expected = dispatch_allocation(
            _request(AllocationMode.SPQ, remaining), routes, CAPS
        )
        assert rates == pytest.approx(expected, abs=1e-12)

    def test_num_classes_change_forces_rebuild(self):
        state = fresh_state()
        state.allocate(_request(AllocationMode.SPQ, PRIORITIES, num_classes=4))
        assert state.stats.full_rebuilds == 1
        state.allocate(_request(AllocationMode.SPQ, PRIORITIES, num_classes=8))
        assert state.stats.full_rebuilds == 2

    def test_mode_switch_invalidates_rates_only(self):
        state = fresh_state()
        spq = state.allocate(_request(AllocationMode.SPQ, PRIORITIES))
        wrr = state.allocate(_request(AllocationMode.WRR, PRIORITIES))
        assert state.stats.full_rebuilds == 1  # class layout reused
        assert wrr != spq

    def test_out_of_range_classes_clamp_like_legacy(self):
        wild = {1: -3, 2: 99, 3: 1, 4: 2}
        state = fresh_state()
        rates = state.allocate(_request(AllocationMode.SPQ, wild))
        expected = dispatch_allocation(_request(AllocationMode.SPQ, wild), ROUTES, CAPS)
        assert rates == pytest.approx(expected, abs=1e-12)

    def test_flow_added_after_class_build_lands_in_right_class(self):
        state = fresh_state()
        state.allocate(_request(AllocationMode.SPQ, PRIORITIES))
        state.add_flow(9, (2,))
        with_new = {**PRIORITIES, 9: 0}
        rates = state.allocate(_request(AllocationMode.SPQ, with_new))
        routes = {**ROUTES, 9: (2,)}
        expected = dispatch_allocation(
            _request(AllocationMode.SPQ, with_new), routes, CAPS
        )
        assert rates == pytest.approx(expected, abs=1e-12)


class TestEngineStats:
    def test_snapshot_is_independent_copy(self):
        stats = EngineStats(allocations=3, cache_hits=1)
        snap = stats.snapshot()
        stats.allocations = 99
        assert snap.allocations == 3
        assert snap.cache_hits == 1

    def test_counters_accumulate(self):
        state = fresh_state()
        assert state.stats.delta_updates == len(ROUTES)
        state.allocate(_request(AllocationMode.WRR, PRIORITIES))
        state.allocate(_request(AllocationMode.WRR, PRIORITIES))
        state.remove_flow(1)
        state.allocate(_request(AllocationMode.WRR, {2: 1, 3: 0, 4: 2}))
        assert state.stats.allocations == 3
        assert state.stats.cache_hits == 1
        assert state.stats.full_rebuilds == 1
        assert state.stats.delta_updates == len(ROUTES) + 1
