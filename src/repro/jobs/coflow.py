"""Coflow: a collection of flows sharing one performance objective.

A coflow groups the flows of one shuffle between two successive computation
stages (paper §II).  In a multi-stage job, coflows are vertices of a DAG;
a coflow is *released* (its flows start) only once every coflow it depends
on has completed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import InvalidJobError
from repro.jobs.flow import Flow, FlowState

if TYPE_CHECKING:  # annotation-only: a runtime import would cycle
    from repro.simulator.units import Bytes, Seconds


class CoflowState(enum.Enum):
    """Lifecycle of a coflow inside the simulator."""

    BLOCKED = "blocked"  #: waiting on dependencies (or job not arrived)
    RUNNING = "running"  #: flows released and transmitting
    DONE = "done"  #: every flow delivered


@dataclass
class Coflow:
    """A group of flows between two successive computation stages.

    Parameters
    ----------
    coflow_id:
        Globally unique identifier.
    job_id:
        Owning job.
    flows:
        The flows of this coflow; at least one.
    stage:
        1-indexed depth of the coflow in the job DAG (leaves are stage 1).
        Filled in by :meth:`repro.jobs.job.Job.finalize`.
    """

    coflow_id: int
    job_id: int
    flows: List[Flow] = field(default_factory=list)
    stage: int = 1

    state: CoflowState = CoflowState.BLOCKED
    release_time: Optional[Seconds] = None
    finish_time: Optional[Seconds] = None

    def __post_init__(self) -> None:
        if not self.flows:
            raise InvalidJobError(f"coflow {self.coflow_id} has no flows")
        for flow in self.flows:
            if flow.coflow_id != self.coflow_id:
                raise InvalidJobError(
                    f"flow {flow.flow_id} claims coflow {flow.coflow_id}, "
                    f"but is attached to coflow {self.coflow_id}"
                )

    # ------------------------------------------------------------------
    # Static (clairvoyant) dimensions of the coflow (paper §III.C):
    # horizontal = width, vertical = largest flow size.
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Horizontal dimension: number of flows."""
        return len(self.flows)

    @property
    def max_flow_bytes(self) -> Bytes:
        """Vertical dimension: size of the largest flow."""
        return max(flow.size_bytes for flow in self.flows)

    @property
    def mean_flow_bytes(self) -> Bytes:
        """Average flow size, used to normalize the blocking effect."""
        return self.total_bytes / len(self.flows)

    @property
    def total_bytes(self) -> Bytes:
        """Aggregate size of all flows."""
        return sum(flow.size_bytes for flow in self.flows)

    # ------------------------------------------------------------------
    # Online (observable) quantities, as seen at the receivers.
    # ------------------------------------------------------------------
    @property
    def bytes_sent(self) -> Bytes:
        """Bytes delivered so far across all flows."""
        return sum(flow.bytes_sent for flow in self.flows)

    @property
    def active_width(self) -> int:
        """Number of currently open connections (active flows)."""
        return sum(1 for flow in self.flows if flow.state is FlowState.ACTIVE)

    @property
    def observed_max_flow_bytes(self) -> Bytes:
        """Largest per-flow byte count observed at the receivers so far."""
        return max((flow.bytes_sent for flow in self.flows), default=0.0)

    @property
    def observed_mean_flow_bytes(self) -> Bytes:
        """Average per-flow byte count observed at the receivers so far."""
        if not self.flows:
            return 0.0
        return self.bytes_sent / len(self.flows)

    def observed_stats(self) -> Tuple[int, Bytes, Bytes]:
        """``(active_width, observed_max, observed_mean)`` in one pass.

        Ψ̈ needs all three every scheduling round; computing them via the
        individual properties walks the flow list three times (four with
        the critical-path estimator re-reading the max).  One pass in the
        same flow order produces bit-identical values: the sum accumulates
        in list order, the max is an exact selection, and the mean divides
        the same sum by the same width.
        """
        active = 0
        total = 0.0
        largest = 0.0
        for flow in self.flows:
            if flow.state is FlowState.ACTIVE:
                active += 1
            sent = flow.size_bytes - flow.remaining_bytes
            total += sent
            if sent > largest:
                largest = sent
        return active, largest, total / len(self.flows)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_done(self) -> bool:
        return self.state is CoflowState.DONE

    @property
    def is_running(self) -> bool:
        return self.state is CoflowState.RUNNING

    def release(self, now: Seconds) -> None:
        """Release the coflow: all its flows become active."""
        if self.state is not CoflowState.BLOCKED:
            raise InvalidJobError(
                f"coflow {self.coflow_id} released twice (state={self.state})"
            )
        self.state = CoflowState.RUNNING
        self.release_time = now
        for flow in self.flows:
            flow.start(now)

    def maybe_complete(self, now: Seconds) -> bool:
        """Mark the coflow DONE if every flow finished; return True if so."""
        if self.state is CoflowState.DONE:
            return False
        if all(flow.is_done for flow in self.flows):
            self.state = CoflowState.DONE
            self.finish_time = now
            return True
        return False

    def completion_time(self) -> Optional[Seconds]:
        """Coflow completion time (CCT) from release to last flow delivery."""
        if self.release_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.release_time
