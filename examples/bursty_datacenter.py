#!/usr/bin/env python3
"""The paper's bursty scenario: job bursts 2 µs apart, every scheduler.

Replays a bursty Facebook-TAO workload (bursts of 10 jobs arriving 2
microseconds apart, separated by ~1 s lulls) under all five policies of
the paper's evaluation, then prints average JCT and the per-category
improvement table — the shape of the paper's Figure 7.

Run:  python examples/bursty_datacenter.py            (laptop scale)
      python examples/bursty_datacenter.py --full     (48-pod, 10k jobs!)
"""

import sys

from repro.experiments import figure7_config, run_scenario
from repro.metrics import format_category_table, format_jct_table


def main() -> None:
    full_scale = "--full" in sys.argv
    config = figure7_config("fb-tao", num_jobs=40, full_scale=full_scale)
    if full_scale:
        print("WARNING: full scale = 27,648 servers / 10,000 jobs; this "
              "takes hours in pure Python.")
    print(f"Scenario: {config.name} — bursts of {config.burst_size} jobs "
          f"2 microseconds apart on a {config.fattree_k}-pod FatTree\n")

    outcome = run_scenario(config)

    print(format_jct_table(outcome.average_jcts()))
    print()
    print(
        format_category_table(
            outcome.category_improvements_over("gurita"),
            title="Improvement of Gurita per Table-1 size category "
            "(>1 means Gurita is faster):",
        )
    )
    improvements = outcome.improvements_over("gurita")
    best = max(improvements, key=improvements.get)
    print(
        f"\nGurita's largest average win: {improvements[best]:.2f}x over {best}"
    )


if __name__ == "__main__":
    main()
