"""Host-clock access for experiment *reporting* — never simulation time.

The simulator's determinism contract (enforced by simlint's SIM001) bans
wall-clock reads anywhere scheduling or allocation decisions are made:
simulated time must come from the event clock.  Measuring how long an
*experiment* took on the host is a different thing — it feeds progress
bars, worker-utilization reports, and cache speedup numbers, and never
flows back into a simulation.

All wall-clock access of the experiments package is concentrated here so
the parallel engine itself (:mod:`repro.experiments.parallel`) stays free
of SIM001/SIM002 hits even when linted under the simulator scope — the
unit suite asserts exactly that.  The engine takes the clock as an
injected callable, so tests substitute a fake clock for exact timings.
"""

from __future__ import annotations

from time import perf_counter, sleep


def host_clock() -> float:
    """Seconds on a monotonic host clock (reporting only).

    The absolute value is meaningless; only differences are.  This must
    never be used as a simulation timestamp.
    """
    return perf_counter()


def host_sleep(seconds: float) -> None:
    """Block the calling thread for host-clock seconds (backoff only).

    Used by the parallel engine to space retry attempts.  It delays when
    host work starts — it never advances or reads simulated time.
    """
    sleep(seconds)
