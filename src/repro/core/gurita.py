"""Gurita — Least Blocking Effect First scheduling of multi-stage jobs.

This is the practical scheduler of paper §IV.B ("from concept to
practice"): no central controller, no prior knowledge of job structure or
flow sizes.  Per job, a head receiver aggregates receiver-side observations
every δ seconds and demotes coflows through exponentially spaced priority
thresholds according to the *estimated per-stage blocking effect* Ψ̈_J(s)
(Algorithm 1, LBEF).

Priority-change semantics follow the paper's TCP-reordering rule:

* a **newly released flow** starts at the highest priority (job information
  is unknown a priori) unless its job was already demoted, in which case it
  inherits the job's current class;
* a **demotion** (new class worse than old) applies immediately to all
  existing flows of the coflow;
* a **promotion** (new class better) applies only to flows released later —
  in-flight flows keep transmitting at their old priority, so packets never
  overtake within a flow.

Enforcement uses WRR-emulated SPQ by default (starvation mitigation);
see :mod:`repro.core.starvation`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import GuritaConfig
from repro.core.critical_path import AvaCriticalPathEstimator
from repro.core.head_receiver import HeadReceiver
from repro.core.receiver import ObservationPlane
from repro.core.starvation import build_request
from repro.jobs.coflow import Coflow, CoflowState
from repro.jobs.flow import Flow
from repro.jobs.job import Job
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import AllocationRequest


class GuritaScheduler(SchedulerPolicy):
    """The paper's contribution: decentralized LBEF over estimated Ψ̈."""

    name = "gurita"
    #: release/demotion class changes are noted precisely, so the
    #: incremental engine moves only the affected flows between classes.
    reports_priority_deltas = True

    def __init__(self, config: Optional[GuritaConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else GuritaConfig()
        self.update_interval = self.config.update_interval
        self._estimator = AvaCriticalPathEstimator(
            max_marks_per_job=self.config.critical_path_marks
        )
        #: deployment-shaped per-receiver flow tables (optional path)
        self._plane = ObservationPlane() if self.config.use_flow_tables else None
        self._head_receivers: Dict[int, HeadReceiver] = {}
        #: class newly released flows of a coflow will receive
        self._coflow_class: Dict[int, int] = {}
        #: latest decided class per job (worst across its running stages)
        self._job_class: Dict[int, int] = {}
        #: sticky per-flow class (set at release, demoted by updates)
        self._flow_class: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_job_arrival(self, job: Job, now: float) -> None:
        self._head_receivers[job.job_id] = HeadReceiver(job, self.config)
        self._job_class[job.job_id] = 0

    def on_coflow_release(self, coflow: Coflow, now: float) -> None:
        # "Newly-arriving flows of a coflow are automatically assigned the
        # highest priority and are allowed to transmit at that priority
        # until a threshold is exceeded or an update is received from HR"
        # (paper §IV.B) — *unless* the HR already demoted the job, in which
        # case new flows inherit the job's current class (the demotion
        # rule; starting over at the top queue would let every new stage of
        # an already-demoted job cut the line until the next δ-round).
        # This is still stage-sensitive: the next δ-round re-evaluates the
        # stage's own blocking effect and promotes future flows if light.
        inherited = self._job_class.get(coflow.job_id, 0)
        self._coflow_class[coflow.coflow_id] = inherited
        for flow in coflow.flows:
            self._flow_class[flow.flow_id] = inherited
            self._note_priority_change(flow.flow_id)
        if self._plane is not None:
            self._plane.on_coflow_release(coflow)

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        self._flow_class.pop(flow.flow_id, None)
        if self._plane is not None:
            self._plane.on_flow_finish(flow)

    def on_coflow_finish(self, coflow: Coflow, now: float) -> None:
        self._coflow_class.pop(coflow.coflow_id, None)
        if self._plane is not None:
            self._plane.on_coflow_finish(coflow)
        # Keep the job class honest: it is the worst class across *running*
        # stages, so a finished stage's demotion must not leak into stages
        # released after it (that would reintroduce Aalo's history
        # punishment and break the paper's stage-sensitivity claim).
        if coflow.job_id in self._job_class:
            assert self.context is not None
            self._job_class[coflow.job_id] = max(
                (
                    self._coflow_class[c.coflow_id]
                    for c in self.context.job(coflow.job_id).coflows
                    if c.coflow_id in self._coflow_class
                ),
                default=0,
            )

    def on_job_finish(self, job: Job, now: float) -> None:
        # HR excludes completed jobs from all further rounds.
        self._head_receivers.pop(job.job_id, None)
        self._job_class.pop(job.job_id, None)
        self._estimator.forget_job(job.job_id)

    # ------------------------------------------------------------------
    # The δ-spaced coordination round
    # ------------------------------------------------------------------
    def on_update(self, now: float) -> bool:
        assert self.context is not None
        changed = False
        for job_id, head_receiver in self._head_receivers.items():
            observations = None
            if self._plane is not None:
                running = [
                    coflow
                    for coflow in head_receiver.job.coflows
                    if coflow.state is CoflowState.RUNNING
                ]
                self._plane.sync_bytes(
                    flow for coflow in running for flow in coflow.flows
                )
                observations = self._plane.observe_coflows(
                    coflow.coflow_id for coflow in running
                )
            decisions = head_receiver.decide(self._estimator, observations)
            if not decisions:
                continue
            self._job_class[job_id] = max(d.priority_class for d in decisions)
            for decision in decisions:
                changed = (
                    self._apply_decision(decision.coflow_id, decision.priority_class)
                    or changed
                )
        return changed

    def _apply_decision(self, coflow_id: int, new_class: int) -> bool:
        """Demotions hit existing flows; promotions only future ones.

        Returns True if any in-flight flow's priority actually changed.
        """
        assert self.context is not None
        old_class = self._coflow_class.get(coflow_id, 0)
        self._coflow_class[coflow_id] = new_class
        changed = False
        if new_class > old_class:
            for flow in self.context.coflow(coflow_id).flows:
                if flow.is_active and self._flow_class.get(flow.flow_id, 0) < new_class:
                    self._flow_class[flow.flow_id] = new_class
                    self._note_priority_change(flow.flow_id)
                    changed = True
        return changed

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        priorities = {
            flow.flow_id: self._flow_class.get(flow.flow_id, 0)
            for flow in active_flows
        }
        return build_request(self.config, priorities)
