#!/usr/bin/env python
"""Resume smoke: kill a supervised run mid-flight, resume, diff fingerprints.

The checkpoint/resume hard guarantee, checked end-to-end through the
CLI (what the ``resume-smoke`` CI job runs):

1. run a supervised trials grid uninterrupted and record its JCT
   fingerprint;
2. launch the identical grid in a fresh run directory, SIGKILL the
   process as soon as durable state (a checkpoint, partial, or cache
   entry) appears on disk;
3. ``repro resume`` the killed run's manifest;
4. fail unless the resumed grid prints the exact fingerprint of the
   uninterrupted run.

Exit code 0 = bit-identical; anything else is a determinism regression.
"""

from __future__ import annotations

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Big enough that the victim cannot finish before the kill lands on a
#: typical machine; small enough to keep the smoke inside a CI budget.
TRIALS_FLAGS = [
    "trials",
    "--jobs", "30",
    "--seeds", "1,2",
    "--schedulers", "pfs,gurita",
]

#: Simulated-seconds cadence: frequent enough that a kill costs little
#: progress, coarse enough that checkpoint writes stay off the profile.
CHECKPOINT_EVERY = "0.25"

FINGERPRINT_RE = re.compile(r"^jct fingerprint: ([0-9a-f]{32})$", re.MULTILINE)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _repro(*args: str, **popen_kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        capture_output=True,
        text=True,
        **popen_kwargs,
    )


def _fingerprint_of(output: str, label: str) -> str:
    match = FINGERPRINT_RE.search(output)
    if not match:
        print(f"FAIL: no jct fingerprint in {label} output:\n{output}")
        raise SystemExit(1)
    return match.group(1)


def _durable_state_exists(run_dir: Path) -> bool:
    for sub in ("checkpoints", "partial", "cache"):
        root = run_dir / sub
        if root.is_dir() and any(root.iterdir()):
            return True
    return False


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="resume-smoke-"))
    clean_dir = workdir / "clean"
    victim_dir = workdir / "victim"
    try:
        print("== clean supervised run")
        clean = _repro(*TRIALS_FLAGS, "--run-dir", str(clean_dir),
                       "--checkpoint-every", CHECKPOINT_EVERY)
        if clean.returncode != 0:
            print(f"FAIL: clean run exited {clean.returncode}:\n{clean.stderr}")
            return 1
        expected = _fingerprint_of(clean.stdout, "clean run")
        print(f"   fingerprint {expected}")

        print("== victim run (to be killed mid-flight)")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *TRIALS_FLAGS,
             "--run-dir", str(victim_dir), "--checkpoint-every", CHECKPOINT_EVERY],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60.0
        killed = False
        while victim.poll() is None:
            if _durable_state_exists(victim_dir):
                os.kill(victim.pid, signal.SIGKILL)
                killed = True
                break
            if time.monotonic() > deadline:
                victim.kill()
                print("FAIL: victim produced no durable state within 60s")
                return 1
            time.sleep(0.01)
        victim.wait(timeout=30.0)
        if killed:
            print(f"   killed pid {victim.pid} with durable state on disk")
        else:
            print("   victim finished before the kill (machine too fast); "
                  "resume must then be pure cache hits")
        if not (victim_dir / "manifest.json").exists():
            print("FAIL: victim left no manifest to resume from")
            return 1

        print("== resume the killed run")
        resumed = _repro("resume", str(victim_dir))
        if resumed.returncode != 0:
            print(
                f"FAIL: resume exited {resumed.returncode}:\n"
                f"{resumed.stdout}\n{resumed.stderr}"
            )
            return 1
        actual = _fingerprint_of(resumed.stdout, "resumed run")
        print(f"   fingerprint {actual}")

        if actual != expected:
            print(
                f"FAIL: resumed fingerprint {actual} != clean {expected} — "
                "the kill/restore path changed simulation results"
            )
            return 1
        print("OK: resumed run is bit-identical to the uninterrupted run")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
