"""Failure-isolation hardening of the parallel grid engine.

Covers the robustness additions: exponential retry backoff with
deterministic per-unit jitter, the per-unit wall-clock timeout,
hung-worker termination with pool rebuild, corrupt-cache quarantine,
per-attempt wall-time records, and the structured ``UnitFailure`` kinds.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ExperimentError
from repro.experiments import parallel as parallel_module
from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.experiments.parallel import (
    ResultCache,
    WorkUnit,
    retry_jitter,
    run_grid,
)

#: Empty scheduler set: result validation accepts a bare ScenarioResult,
#: letting these tests use stub runners instead of real simulations.
def _unit(name: str, seed: int = 1) -> WorkUnit:
    return WorkUnit(
        config=ScenarioConfig(name=name, seed=seed, schedulers=())
    )


def _ok(unit: WorkUnit) -> ScenarioResult:
    return ScenarioResult(config=unit.config)


def _hang_first_unit(unit: WorkUnit) -> ScenarioResult:
    if unit.config.name == "hang":
        time.sleep(60.0)
    return ScenarioResult(config=unit.config)


def _always_hang(unit: WorkUnit) -> ScenarioResult:
    time.sleep(60.0)
    return ScenarioResult(config=unit.config)


class TestParameterValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([_unit("a")], retries=-1, run_unit=_ok)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([_unit("a")], backoff_base=-0.1, run_unit=_ok)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([_unit("a")], unit_timeout=0.0, run_unit=_ok)


class TestRetryBackoff:
    def test_backoff_spaces_attempts_exponentially(self, monkeypatch):
        sleeps = []

        def recording_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            time.sleep(seconds)

        monkeypatch.setattr(parallel_module, "_sleep", recording_sleep)
        attempts = {"count": 0}

        def flaky(unit: WorkUnit) -> ScenarioResult:
            attempts["count"] += 1
            if attempts["count"] <= 2:
                raise RuntimeError("transient")
            return ScenarioResult(config=unit.config)

        report = run_grid(
            [_unit("flaky")],
            parallel=2,
            retries=2,
            backoff_base=0.02,
            run_unit=flaky,
            use_threads=True,
        )
        assert report.ok
        assert report.stats.retries == 2
        assert attempts["count"] == 3
        # First retry waits ~backoff_base, second ~2x that, each scaled
        # by the unit's deterministic jitter (the engine may split one
        # wait across wake-ups, so compare the total).
        unit = _unit("flaky")
        expected = 0.02 * parallel_module.retry_jitter(unit, 1)
        expected += 0.04 * parallel_module.retry_jitter(unit, 2)
        assert sum(sleeps) >= expected - 0.005

    def test_zero_backoff_retries_immediately(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "_sleep",
            lambda s: pytest.fail("backoff sleep with backoff_base=0"),
        )
        attempts = {"count": 0}

        def flaky(unit: WorkUnit) -> ScenarioResult:
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("transient")
            return ScenarioResult(config=unit.config)

        report = run_grid(
            [_unit("flaky")], retries=1, run_unit=flaky, use_threads=True,
            parallel=2,
        )
        assert report.ok and report.stats.retries == 1


class TestUnitTimeout:
    def test_hung_process_worker_is_killed_and_pool_rebuilt(self):
        units = [_unit("hang")] + [_unit(f"ok{i}") for i in range(3)]
        events = []
        started = time.monotonic()
        report = run_grid(
            units,
            parallel=2,
            unit_timeout=1.0,
            run_unit=_hang_first_unit,
            progress=lambda e: events.append((e.kind, e.index)),
        )
        elapsed = time.monotonic() - started
        # The hung worker must not stall the grid for its full 60s sleep.
        assert elapsed < 30.0
        assert report.stats.timeouts == 1
        assert report.stats.failures == 1
        assert report.stats.completed == 3
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert failure.index == 0
        assert "timeout" in failure.error
        assert ("timeout", 0) in events

    def test_timeouts_are_not_retried(self):
        report = run_grid(
            [_unit("hang")],
            parallel=2,
            retries=3,
            unit_timeout=0.5,
            run_unit=_always_hang,
        )
        assert report.stats.timeouts == 1
        assert report.stats.retries == 0
        assert report.failures[0].kind == "timeout"

    def test_fast_units_unaffected_by_timeout(self):
        report = run_grid(
            [_unit(f"u{i}") for i in range(4)],
            parallel=2,
            unit_timeout=30.0,
            run_unit=_ok,
            use_threads=True,
        )
        assert report.ok
        assert report.stats.timeouts == 0
        assert report.stats.completed == 4

    def test_error_failures_keep_kind_error(self):
        def boom(unit: WorkUnit) -> ScenarioResult:
            raise ValueError("broken unit")

        report = run_grid(
            [_unit("boom")], retries=0, run_unit=boom, use_threads=True,
            parallel=2,
        )
        (failure,) = report.failures
        assert failure.kind == "error"
        assert "broken unit" in failure.error
        assert failure.to_dict()["kind"] == "error"


class TestRetryJitterDeterminism:
    def test_jitter_is_a_pure_function_of_unit_and_attempt(self):
        unit = _unit("a", seed=5)
        assert retry_jitter(unit, 1) == retry_jitter(_unit("a", seed=5), 1)
        assert retry_jitter(unit, 1) != retry_jitter(unit, 2)
        assert retry_jitter(unit, 1) != retry_jitter(_unit("b", seed=5), 1)

    def test_jitter_stays_in_half_to_three_halves(self):
        for name in ("a", "b", "c", "d"):
            for attempt in (1, 2, 3, 7):
                value = retry_jitter(_unit(name), attempt)
                assert 0.5 <= value < 1.5


class TestAttemptWallTimes:
    def test_failure_records_per_attempt_seconds(self):
        def boom(unit: WorkUnit) -> ScenarioResult:
            raise ValueError("always broken")

        report = run_grid(
            [_unit("boom")], retries=2, run_unit=boom, use_threads=True,
            parallel=2,
        )
        (failure,) = report.failures
        assert failure.attempts == 3
        assert len(failure.attempt_seconds) == 3
        assert all(seconds >= 0.0 for seconds in failure.attempt_seconds)
        assert failure.to_dict()["attempt_seconds"] == failure.attempt_seconds

    def test_timeout_failure_records_attempt_seconds(self):
        report = run_grid(
            [_unit("hang")],
            parallel=2,
            unit_timeout=0.5,
            run_unit=_always_hang,
        )
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert len(failure.attempt_seconds) == 1
        assert failure.attempt_seconds[0] >= 0.5


class TestCacheQuarantine:
    def test_truncated_entry_is_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = _unit("quarantine")
        cache.store(unit, ScenarioResult(config=unit.config))
        entry = cache.path_for(unit)
        raw = entry.read_bytes()
        entry.write_bytes(raw[: len(raw) // 2])  # torn mid-write

        assert cache.load(unit) is None
        assert cache.corrupt_entries == 1
        assert not entry.exists()  # moved aside, slot free for rewrite
        assert entry.with_suffix(".corrupt").exists()

        report = run_grid([unit], cache=cache, run_unit=_ok, use_threads=True)
        assert report.ok
        assert report.stats.cache_corrupt == 0  # quarantined before the run
        assert cache.load(unit) is not None  # recomputed and re-stored

    def test_quarantine_counted_in_grid_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = _unit("quarantine-stats")
        cache.store(unit, ScenarioResult(config=unit.config))
        entry = cache.path_for(unit)
        entry.write_bytes(b"\x80\x04garbage")

        report = run_grid([unit], cache=cache, run_unit=_ok, use_threads=True)
        assert report.ok
        assert report.stats.cache_corrupt == 1

    def test_format_skew_is_a_plain_miss_not_quarantine(self, tmp_path):
        import pickle

        cache = ResultCache(tmp_path)
        unit = _unit("old-format")
        entry = cache.path_for(unit)
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(
            pickle.dumps({"format": "repro-cache-v0", "result": None})
        )
        assert cache.load(unit) is None
        assert cache.corrupt_entries == 0
        assert entry.exists()  # left in place: version skew, not damage
