"""Opt-in runtime invariant checking for the flow-level simulator.

Static analysis (``tools/simlint``) catches determinism hazards in the
source; this module guards the *running* simulation against conservation
and causality violations — the failure classes that dominate
simulator-vs-theory gaps in coflow-scheduling evaluations:

* **capacity conservation** — the allocated rate on every link must not
  exceed its capacity (within a relative tolerance for float drift);
* **volume conservation** — no active flow may hold negative remaining
  bytes;
* **event causality** — the event loop must never pop an event earlier
  than the simulation clock (beyond float time resolution);
* **cache coherence** — a sampled audit that rebuilds the incremental
  allocation engine's link memberships from scratch and diffs them against
  the live :class:`~repro.simulator.bandwidth.engine.AllocationState`.
  This is the race-detector analogue for the engine's delta-maintained
  caches: a policy that opts into ``reports_priority_deltas`` but fails to
  report a class change shows up here, not as a silently wrong JCT.

The checker is **off by default** (zero hot-path cost).  Enable it per run
with ``CoflowSimulation(..., check_invariants=True)`` or process-wide with
the environment variable ``REPRO_INVARIANTS=1`` (``REPRO_INVARIANTS=strict``
additionally raises :class:`~repro.errors.SimulationError` on the first
violation).  Violation counters are surfaced on
:attr:`~repro.simulator.runtime.SimulationResult.invariant_report` and via
:func:`repro.simulator.observability.invariant_counters`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.jobs.flow import VOLUME_EPSILON, Flow
from repro.simulator.bandwidth.engine import AllocationState
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest
from repro.simulator.timecmp import time_resolution

#: Environment variable that switches the checker on without code changes.
INVARIANTS_ENV = "REPRO_INVARIANTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def invariants_from_env() -> Tuple[bool, bool]:
    """(enabled, strict) according to :data:`INVARIANTS_ENV`."""
    raw = os.environ.get(INVARIANTS_ENV, "").strip().lower()
    if raw == "strict":
        return True, True
    return raw in _TRUTHY, False


@dataclass(frozen=True)
class InvariantViolation:
    """One recorded invariant violation."""

    kind: str
    time: float
    message: str

    def render(self) -> str:
        return f"[{self.kind}] t={self.time:.9g}: {self.message}"


@dataclass
class InvariantReport:
    """Aggregated outcome of one run's invariant checking."""

    #: individual check invocations (allocations, event pops, audits)
    checks: int = 0
    #: violation count per kind (zero-filled for all kinds)
    counts: Dict[str, int] = field(default_factory=dict)
    #: first few violations, verbatim, for debugging
    examples: List[InvariantViolation] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return sum(self.counts.values())

    @property
    def clean(self) -> bool:
        return self.total_violations == 0

    def summary(self) -> str:
        if self.clean:
            return f"invariants: {self.checks} checks, 0 violations"
        per_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.counts.items()) if count
        )
        return (
            f"invariants: {self.checks} checks, "
            f"{self.total_violations} violations ({per_kind})"
        )


class InvariantChecker:
    """Asserts simulator invariants during a run; counts what it finds.

    ``strict=True`` raises :class:`SimulationError` on the first violation
    (the CI mode); otherwise violations are counted and surfaced on the
    final report so a long run is never aborted mid-flight.
    """

    CAPACITY = "capacity"
    NEGATIVE_VOLUME = "negative_volume"
    CAUSALITY = "causality"
    CACHE_COHERENCE = "cache_coherence"
    DOWNED_LINK = "downed_link"
    CRASHED_HOST = "crashed_host"
    KINDS: Tuple[str, ...] = (
        CAPACITY,
        NEGATIVE_VOLUME,
        CAUSALITY,
        CACHE_COHERENCE,
        DOWNED_LINK,
        CRASHED_HOST,
    )

    def __init__(
        self,
        capacities: Sequence[float],
        *,
        relative_tolerance: float = 1e-6,
        audit_interval: int = 64,
        strict: bool = False,
        max_examples: int = 20,
    ) -> None:
        if audit_interval < 1:
            raise SimulationError("audit_interval must be >= 1")
        self._caps: List[float] = [float(c) for c in capacities]
        self.relative_tolerance = relative_tolerance
        self.audit_interval = audit_interval
        self.strict = strict
        self.max_examples = max_examples
        self._counts: Dict[str, int] = {kind: 0 for kind in self.KINDS}
        self._examples: List[InvariantViolation] = []
        self._checks = 0
        self._allocations_since_audit = 0
        #: live fault state mirrored in by the runtime (empty = no faults)
        self._downed_links: Set[int] = set()
        self._crashed_hosts: Set[int] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, kind: str, now: float, message: str) -> None:
        self._counts[kind] += 1
        violation = InvariantViolation(kind=kind, time=now, message=message)
        if len(self._examples) < self.max_examples:
            self._examples.append(violation)
        if self.strict:
            raise SimulationError(f"invariant violation {violation.render()}")

    def report(self) -> InvariantReport:
        return InvariantReport(
            checks=self._checks,
            counts=dict(self._counts),
            examples=list(self._examples),
        )

    # ------------------------------------------------------------------
    # Fault state mirroring (wired by the runtime's fault injector)
    # ------------------------------------------------------------------
    def note_capacity(self, link_id: int, capacity: float) -> None:
        """Mirror a fault-injected capacity revocation/restoration.

        Keeps the conservation check honest during flaps: allocated rate
        is compared against the *revoked* capacity, not the nominal one,
        so an engine that keeps handing out pre-fault bandwidth is a
        violation rather than a silently optimistic run.
        """
        if 0 <= link_id < len(self._caps):
            self._caps[link_id] = float(capacity)

    def note_fault_state(
        self,
        downed_links: Iterable[int],
        crashed_hosts: Iterable[int],
    ) -> None:
        """Mirror the live downed-link / crashed-host sets."""
        self._downed_links = set(downed_links)
        self._crashed_hosts = set(crashed_hosts)

    # ------------------------------------------------------------------
    # Event causality
    # ------------------------------------------------------------------
    def check_event_causality(self, event_time: float, now: float) -> None:
        """The event loop must never pop an event behind the clock."""
        self._checks += 1
        if event_time < now - time_resolution(now):
            self._record(
                self.CAUSALITY,
                now,
                f"popped event at t={event_time!r} behind clock t={now!r}",
            )

    # ------------------------------------------------------------------
    # Conservation (rates and volumes)
    # ------------------------------------------------------------------
    def check_allocation(
        self,
        flows: Iterable[Flow],
        rates: Mapping[int, float],
        now: float,
    ) -> None:
        """Per-link allocated rate <= capacity; no negative volumes.

        With fault state mirrored in (:meth:`note_fault_state`), also
        asserts graceful degradation: no rate on a downed link, and no
        progress credited to a flow whose endpoint host has crashed.
        """
        self._checks += 1
        usage: Dict[int, float] = {}
        for flow in flows:
            rate = rates.get(flow.flow_id, 0.0)
            if rate < 0.0:
                self._record(
                    self.CAPACITY,
                    now,
                    f"flow {flow.flow_id} allocated negative rate {rate!r}",
                )
            if flow.remaining_bytes < -VOLUME_EPSILON:
                self._record(
                    self.NEGATIVE_VOLUME,
                    now,
                    f"flow {flow.flow_id} has negative remaining volume "
                    f"{flow.remaining_bytes!r}",
                )
            if rate > 0.0:
                if self._downed_links:
                    for link_id in flow.route:
                        if link_id in self._downed_links:
                            self._record(
                                self.DOWNED_LINK,
                                now,
                                f"flow {flow.flow_id} allocated rate {rate!r} "
                                f"over downed link {link_id}",
                            )
                if self._crashed_hosts and (
                    flow.src in self._crashed_hosts
                    or flow.dst in self._crashed_hosts
                ):
                    self._record(
                        self.CRASHED_HOST,
                        now,
                        f"flow {flow.flow_id} credited rate {rate!r} while "
                        f"endpoint host is crashed "
                        f"(src={flow.src}, dst={flow.dst})",
                    )
            for link_id in flow.route:
                usage[link_id] = usage.get(link_id, 0.0) + rate
        for link_id in sorted(usage):
            cap = self._caps[link_id]
            allowed = cap * (1.0 + self.relative_tolerance)
            if usage[link_id] > allowed:
                self._record(
                    self.CAPACITY,
                    now,
                    f"link {link_id} allocated {usage[link_id]!r} "
                    f"over capacity {cap!r}",
                )

    # ------------------------------------------------------------------
    # Cache coherence (the incremental engine's delta-maintained caches)
    # ------------------------------------------------------------------
    def maybe_audit_engine(
        self,
        engine: AllocationState,
        flows: Sequence[Flow],
        request: AllocationRequest,
        now: float,
    ) -> bool:
        """Run the from-scratch audit on every ``audit_interval``-th call."""
        self._allocations_since_audit += 1
        if self._allocations_since_audit < self.audit_interval:
            return False
        self._allocations_since_audit = 0
        self.audit_engine(engine, flows, request, now)
        return True

    def audit_engine(
        self,
        engine: AllocationState,
        flows: Sequence[Flow],
        request: AllocationRequest,
        now: float,
    ) -> None:
        """Rebuild memberships from the runtime's ground truth and diff.

        ``flows`` is the runtime's active set *after* the allocation round,
        i.e. the state the engine's caches claim to mirror.
        """
        self._checks += 1
        expected_routes = {flow.flow_id: flow.route for flow in flows}
        actual_routes = dict(engine.all_flows.routes)
        if actual_routes != expected_routes:
            missing = sorted(set(expected_routes) - set(actual_routes))
            stale = sorted(set(actual_routes) - set(expected_routes))
            wrong = [
                fid
                for fid in sorted(set(expected_routes) & set(actual_routes))
                if expected_routes[fid] != actual_routes[fid]
            ]
            self._record(
                self.CACHE_COHERENCE,
                now,
                "engine membership diverged from active flows "
                f"(missing={missing[:5]}, stale={stale[:5]}, "
                f"wrong_route={wrong[:5]})",
            )
            return  # per-link diffs below would just repeat the story

        expected_counts: Dict[int, int] = {}
        expected_members: Dict[int, Set[int]] = {}
        for flow_id, route in expected_routes.items():
            for link_id in route:
                expected_counts[link_id] = expected_counts.get(link_id, 0) + 1
                expected_members.setdefault(link_id, set()).add(flow_id)
        actual_members = {
            link_id: set(members)
            for link_id, members in engine.all_flows.link_members.items()
        }
        if actual_members != expected_members:
            self._record(
                self.CACHE_COHERENCE,
                now,
                "engine per-link member sets diverged from a from-scratch "
                "rebuild",
            )
        for link_id in sorted(expected_counts):
            actual = int(engine.all_flows.counts[link_id])
            if actual != expected_counts[link_id]:
                self._record(
                    self.CACHE_COHERENCE,
                    now,
                    f"link {link_id} member count {actual} != rebuilt "
                    f"{expected_counts[link_id]}",
                )

        self._audit_class_layout(engine, expected_routes, request, now)

    def _audit_class_layout(
        self,
        engine: AllocationState,
        expected_routes: Mapping[int, Tuple[int, ...]],
        request: AllocationRequest,
        now: float,
    ) -> None:
        """Per-class memberships must mirror the latest request's classes."""
        if request.mode is AllocationMode.MAXMIN:
            return  # class caches unused (possibly stale by design)
        class_members = engine.class_members
        if class_members is None or engine.num_classes != request.num_classes:
            return  # engine rebuilds lazily on the next classed request
        class_of = engine.class_of
        for flow_id in sorted(expected_routes):
            expected_cls = request.priorities.get(flow_id, request.num_classes - 1)
            expected_cls = min(max(expected_cls, 0), request.num_classes - 1)
            actual_cls = class_of.get(flow_id)
            if actual_cls != expected_cls:
                self._record(
                    self.CACHE_COHERENCE,
                    now,
                    f"flow {flow_id} cached in class {actual_cls}, request "
                    f"says {expected_cls} (unreported priority change?)",
                )
        for cls, membership in enumerate(class_members):
            for flow_id in sorted(membership.routes):
                if class_of.get(flow_id) != cls:
                    self._record(
                        self.CACHE_COHERENCE,
                        now,
                        f"flow {flow_id} present in class-{cls} membership "
                        f"but class map says {class_of.get(flow_id)}",
                    )
