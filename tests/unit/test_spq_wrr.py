"""Unit tests for SPQ and WRR-emulated-SPQ allocation."""

import pytest

from repro.simulator.bandwidth.spq import allocate_spq, group_by_class
from repro.simulator.bandwidth.wrr import (
    allocate_wrr,
    class_loads_from_counts,
    spq_waiting_times,
    wrr_weights,
)


class TestGrouping:
    def test_flows_split_by_class(self):
        groups = group_by_class(
            {1: (0,), 2: (0,), 3: (1,)}, {1: 0, 2: 1, 3: 1}, 2
        )
        assert set(groups[0]) == {1}
        assert set(groups[1]) == {2, 3}

    def test_missing_priority_falls_to_lowest(self):
        groups = group_by_class({1: (0,)}, {}, 4)
        assert set(groups[3]) == {1}

    def test_out_of_range_classes_clamp(self):
        groups = group_by_class({1: (0,), 2: (0,)}, {1: -3, 2: 99}, 4)
        assert set(groups[0]) == {1}
        assert set(groups[3]) == {2}


class TestSpq:
    def test_high_class_preempts_low(self):
        rates = allocate_spq(
            {1: (0,), 2: (0,)}, {1: 0, 2: 1}, [10.0], num_classes=2
        )
        assert rates[1] == pytest.approx(10.0)
        assert rates[2] == pytest.approx(0.0)

    def test_low_class_gets_leftovers(self):
        # High-class flow bottlenecked elsewhere leaves room on link 0.
        rates = allocate_spq(
            {1: (0, 1), 2: (0,)}, {1: 0, 2: 1}, [10.0, 4.0], num_classes=2
        )
        assert rates[1] == pytest.approx(4.0)
        assert rates[2] == pytest.approx(6.0)

    def test_within_class_is_maxmin(self):
        rates = allocate_spq(
            {1: (0,), 2: (0,), 3: (0,)}, {1: 0, 2: 0, 3: 1}, [9.0], 2
        )
        assert rates[1] == pytest.approx(4.5)
        assert rates[2] == pytest.approx(4.5)
        assert rates[3] == pytest.approx(0.0)


class TestWrrWeights:
    def test_loads_scale_to_utilization(self):
        loads = class_loads_from_counts([3, 1], utilization=0.8)
        assert sum(loads) == pytest.approx(0.8)
        assert loads[0] == pytest.approx(0.6)

    def test_waiting_times_increase_with_class(self):
        waits = spq_waiting_times([0.3, 0.3, 0.3])
        assert waits[0] < waits[1] < waits[2]

    def test_inverse_wait_weights_descend(self):
        weights = wrr_weights([0.3, 0.3, 0.3], mode="inverse_wait")
        assert weights[0] > weights[1] > weights[2]
        assert sum(weights) == pytest.approx(1.0)

    def test_literal_weights_ascend(self):
        weights = wrr_weights([0.3, 0.3, 0.3], mode="literal")
        assert weights[0] < weights[2]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            wrr_weights([0.5], mode="nope")

    def test_zero_loads_give_uniform_weights(self):
        weights = wrr_weights([0.0, 0.0])
        assert weights == pytest.approx([0.5, 0.5])


class TestWrrAllocation:
    def test_no_starvation(self):
        """Unlike SPQ, every class keeps a positive rate on a shared link."""
        rates = allocate_wrr(
            {1: (0,), 2: (0,)}, {1: 0, 2: 3}, [10.0], num_classes=4
        )
        assert rates[1] > rates[2] > 0.0

    def test_work_conserving(self):
        rates = allocate_wrr(
            {1: (0,), 2: (0,)}, {1: 0, 2: 3}, [10.0], num_classes=4
        )
        assert sum(rates.values()) == pytest.approx(10.0)

    def test_single_class_equals_maxmin(self):
        rates = allocate_wrr(
            {1: (0,), 2: (0,)}, {1: 0, 2: 0}, [10.0], num_classes=4
        )
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_lone_flow_gets_full_link(self):
        """Work conservation: an unopposed low-class flow is not capped at
        its WRR share."""
        rates = allocate_wrr({1: (0,)}, {1: 3}, [10.0], num_classes=4)
        assert rates[1] == pytest.approx(10.0)

    def test_respects_capacity(self):
        flows = {i: (0,) for i in range(8)}
        priorities = {i: i % 4 for i in range(8)}
        rates = allocate_wrr(flows, priorities, [10.0], num_classes=4)
        assert sum(rates.values()) <= 10.0 + 1e-6
