"""Blessed float-time comparison helpers.

Simulation timestamps are floats, and two timestamps produced by different
arithmetic paths may disagree in the last few ulps even when they denote
the same instant.  Exact ``==``/``!=`` on timestamps is therefore banned by
simlint (rule SIM004) everywhere except this module; compare through
:func:`times_close` / :func:`time_before` instead.

The resolution model matches the runtime's event batching: anything within
8 ulps of the clock (floored at :data:`TIME_EPSILON` near zero) is below
simulation time resolution.
"""

from __future__ import annotations

import math

from repro.simulator.units import Seconds

#: Absolute floor of the time resolution (seconds); relevant only near t=0.
TIME_EPSILON: Seconds = 1e-15

#: Relative resolution in units of ulps at the current clock value.
RESOLUTION_ULPS = 8.0


def time_resolution(t: Seconds) -> Seconds:
    """The smallest meaningful time step at clock value ``t``.

    Events closer together than this are considered simultaneous; flows
    whose remaining transfer time falls below it cannot make float-visible
    progress.
    """
    return max(math.ulp(abs(t)) * RESOLUTION_ULPS, TIME_EPSILON)


def times_close(a: Seconds, b: Seconds) -> bool:
    """Do ``a`` and ``b`` denote the same simulation instant?"""
    return abs(a - b) <= max(time_resolution(a), time_resolution(b))


def time_before(a: Seconds, b: Seconds) -> bool:
    """Is ``a`` strictly before ``b``, beyond float time resolution?"""
    return a < b - max(time_resolution(a), time_resolution(b))
