"""Lower bounds on job completion time — anchoring "near optimal".

No scheduler can deliver a job faster than the network physically allows.
Two bounds are computed per job:

* **critical-path bound** — along every leaf-to-root path of the coflow
  DAG, stages run serially; each stage needs at least
  ``max(l_max / link_rate, port load / link_rate)`` where the port load is
  the most bytes any single NIC must move for that coflow.  The job needs
  at least the heaviest path.
* **port bound** — across the whole job, some NIC must carry all bytes the
  job sends/receives through it; that volume over the line rate bounds the
  JCT from below (even with perfect pipelining this traffic shares one
  port).
* **precedence-port bound** — the port bound, tightened with the stage
  DAG: bytes a NIC moves for a coflow cannot start before the coflow's
  *earliest start* (the heaviest chain of ancestor service bounds), so for
  any threshold ``t`` the job needs at least ``t`` plus the drain time of
  every byte whose coflow starts at or after ``t``.  The plain port bound
  is the ``t = 0`` special case; on multi-stage jobs where late stages
  revisit a loaded port the precedence term is strictly tighter.

The benches report measured JCT against these bounds; a schedule close to
the bound is close to optimal regardless of what any other policy does.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.jobs.coflow import Coflow
from repro.jobs.job import Job
from repro.jobs.paths import critical_path
from repro.simulator.runtime import SimulationResult
from repro.simulator.units import Bytes, BytesPerSec, Fraction, Seconds


def coflow_service_bound(coflow: Coflow, link_rate: BytesPerSec) -> Seconds:
    """Minimum time to drain one coflow at NIC line rate.

    The slowest of: the largest single flow, the most-loaded sender port,
    and the most-loaded receiver port.
    """
    if link_rate <= 0:
        raise ValueError("link_rate must be positive")
    out_bytes: Dict[int, Bytes] = defaultdict(float)
    in_bytes: Dict[int, Bytes] = defaultdict(float)
    largest = 0.0
    for flow in coflow.flows:
        out_bytes[flow.src] += flow.size_bytes
        in_bytes[flow.dst] += flow.size_bytes
        largest = max(largest, flow.size_bytes)
    port_load = max(
        max(out_bytes.values(), default=0.0),
        max(in_bytes.values(), default=0.0),
    )
    return max(largest, port_load) / link_rate


def job_critical_path_bound(job: Job, link_rate: BytesPerSec) -> Seconds:
    """Serial service time of the heaviest dependency path."""
    def cost(coflow_id: int) -> Seconds:
        return coflow_service_bound(job.coflow(coflow_id), link_rate)

    _path, bound = critical_path(job.dag, cost)
    return bound


def job_port_bound(job: Job, link_rate: BytesPerSec) -> Seconds:
    """The most bytes any one NIC moves for this job, at line rate."""
    if link_rate <= 0:
        raise ValueError("link_rate must be positive")
    out_bytes: Dict[int, Bytes] = defaultdict(float)
    in_bytes: Dict[int, Bytes] = defaultdict(float)
    for coflow in job.coflows:
        for flow in coflow.flows:
            out_bytes[flow.src] += flow.size_bytes
            in_bytes[flow.dst] += flow.size_bytes
    port_load = max(
        max(out_bytes.values(), default=0.0),
        max(in_bytes.values(), default=0.0),
    )
    return port_load / link_rate


def coflow_earliest_starts(job: Job, link_rate: BytesPerSec) -> Dict[int, Seconds]:
    """Earliest possible start of each coflow, per the dependency DAG.

    No schedule can start a coflow before every chain of its ancestors has
    been served; the heaviest such chain of per-coflow service bounds is a
    valid earliest-start time.  Leaves start at 0.
    """
    service = {
        coflow.coflow_id: coflow_service_bound(coflow, link_rate)
        for coflow in job.coflows
    }
    starts: Dict[int, Seconds] = {}
    for cid in job.dag.topological_order():
        starts[cid] = max(
            (starts[dep] + service[dep] for dep in job.dag.dependencies_of(cid)),
            default=0.0,
        )
    return starts


def job_precedence_port_bound(job: Job, link_rate: BytesPerSec) -> Seconds:
    """The port bound tightened with dependency earliest-start times.

    For every NIC direction and every earliest-start threshold ``t``: all
    bytes of coflows starting at or after ``t`` drain through that NIC no
    earlier than ``t + bytes / link_rate``.  Maximising over thresholds
    and ports dominates the plain :func:`job_port_bound` (its ``t = 0``
    case) and, unlike :func:`job_critical_path_bound`, it charges a port
    for *sibling* coflows that share it across concurrent branches.
    """
    if link_rate <= 0:
        raise ValueError("link_rate must be positive")
    starts = coflow_earliest_starts(job, link_rate)
    #: (direction, host) -> [(earliest start, bytes)] per coflow using it
    port_terms: Dict[Tuple[int, int], List[Tuple[float, float]]] = defaultdict(list)
    for coflow in job.coflows:
        start = starts[coflow.coflow_id]
        out_bytes: Dict[int, float] = defaultdict(float)
        in_bytes: Dict[int, float] = defaultdict(float)
        for flow in coflow.flows:
            out_bytes[flow.src] += flow.size_bytes
            in_bytes[flow.dst] += flow.size_bytes
        for host, volume in out_bytes.items():
            port_terms[(0, host)].append((start, volume))
        for host, volume in in_bytes.items():
            port_terms[(1, host)].append((start, volume))
    bound = 0.0
    for terms in port_terms.values():
        # Descending by start: the suffix load of each threshold is the
        # running sum of everything starting no earlier than it.
        terms.sort(reverse=True)
        volume = 0.0
        for start, term_bytes in terms:
            volume += term_bytes
            bound = max(bound, start + volume / link_rate)
    return bound


def job_lower_bound(job: Job, link_rate: BytesPerSec) -> Seconds:
    """The tightest of the critical-path, port, and precedence-port bounds.

    ``job_precedence_port_bound`` dominates ``job_port_bound`` by
    construction; the plain port bound is kept in the max for clarity (and
    as a guard should the precedence term ever be weakened).
    """
    return max(
        job_critical_path_bound(job, link_rate),
        job_port_bound(job, link_rate),
        job_precedence_port_bound(job, link_rate),
    )


def job_single_stage_lower_bound(job: Job, link_rate: BytesPerSec) -> Seconds:
    """The historical bound: critical path + precedence-blind port load.

    Kept so regressions can pin how much the precedence-aware port term
    tightens (see ``tests/unit/test_lowerbound.py``); new code should use
    :func:`job_lower_bound`.
    """
    return max(
        job_critical_path_bound(job, link_rate),
        job_port_bound(job, link_rate),
    )


def optimality_gaps(
    result: SimulationResult, link_rate: BytesPerSec
) -> Dict[int, Fraction]:
    """Measured JCT / lower bound per completed job (>= 1; 1 = optimal)."""
    gaps: Dict[int, Fraction] = {}
    for job in result.jobs:
        jct = job.completion_time()
        if jct is None:
            continue
        bound = job_lower_bound(job, link_rate)
        if bound > 0:
            gaps[job.job_id] = jct / bound
    return gaps


def mean_optimality_gap(result: SimulationResult, link_rate: BytesPerSec) -> Fraction:
    """Average measured/bound ratio across completed jobs."""
    gaps = list(optimality_gaps(result, link_rate).values())
    if not gaps:
        raise ValueError("no completed jobs with positive lower bounds")
    return sum(gaps) / len(gaps)
