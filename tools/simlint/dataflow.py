"""Determinism sinks, the SIM101-SIM106 deep rules, and orchestration.

This module is the front door of ``simlint --deep``: it builds the
project model (:mod:`tools.simlint.callgraph`), runs the interprocedural
taint engine (:mod:`tools.simlint.taint`), matches tainted values against
the *determinism sinks* below, and runs the worker-purity rule (SIM106)
over every ``run_grid`` fan-out site.

Sinks — the places a nondeterministic value must never reach:

* **event timestamps** — ``EventQueue.push`` time arguments; a tainted
  timestamp silently reorders the whole simulation;
* **unit seeds** — ``derive_unit_seed`` / ``WorkUnit`` construction; a
  tainted seed breaks parallel-vs-serial bit-identity;
* **cache keys** — ``WorkUnit.fingerprint`` / ``ResultCache`` /
  ``canonical_config``; a tainted key makes cache hits irreproducible;
* **worker payloads** — ``run_grid`` units, ``Executor.submit``
  arguments, ``ResultCache.store`` payloads; taint here diverges
  workers from the serial oracle.

Findings are reported at the *sink* call site (where the pragma goes);
the message names the source expression and its location, so a
``time.time()`` two modules away is still attributable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.simlint.callgraph import (
    ClassInfo,
    FunctionInfo,
    Project,
    build_project,
    dotted_name,
)
from tools.simlint.findings import Finding, PragmaIndex
from tools.simlint.taint import (
    SOURCE_RULES,
    CallArgs,
    Taint,
    TaintEngine,
    concrete,
    describe_taint,
)

WORKER_PURITY_CODE = "SIM106"


@dataclass(frozen=True)
class DeepRule:
    """Descriptor for one deep (whole-program) rule."""

    code: str
    name: str
    description: str


DEEP_RULES: Tuple[DeepRule, ...] = (
    DeepRule(
        "SIM101",
        "taint-wall-clock",
        "a wall-clock value (time.time, perf_counter, datetime.now, ...) "
        "flows into a determinism sink (event timestamp, unit seed, cache "
        "key, or worker payload), possibly across module boundaries",
    ),
    DeepRule(
        "SIM102",
        "taint-unseeded-rng",
        "an unseeded-RNG value (module-level random.*, random.Random() "
        "without a seed, unseeded numpy.random) flows into a determinism "
        "sink",
    ),
    DeepRule(
        "SIM103",
        "taint-environ",
        "an environment-variable value (os.environ, os.getenv) flows into "
        "a determinism sink; runs become host-configuration dependent",
    ),
    DeepRule(
        "SIM104",
        "taint-hash-id",
        "a hash()/id() value flows into a determinism sink; hash() is "
        "randomized per process and id() is allocation dependent",
    ),
    DeepRule(
        "SIM105",
        "taint-set-order",
        "a value that depends on unordered-collection iteration order "
        "(set iteration, list(set), set.pop()) flows into a determinism "
        "sink",
    ),
    DeepRule(
        WORKER_PURITY_CODE,
        "worker-purity",
        "a callable fanned out by run_grid is not a module-level, "
        "closure-free, picklable function, or transitively reads a "
        "mutable module global mutated at runtime",
    ),
)

DEEP_RULES_BY_CODE: Dict[str, DeepRule] = {rule.code: rule for rule in DEEP_RULES}


# ----------------------------------------------------------------------
# Sink specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SinkSpec:
    """One determinism sink: how to match the call, which args matter."""

    kind: str  #: short label used in finding messages
    #: resolved-target suffixes, matched against dotted call targets
    suffixes: Tuple[str, ...] = ()
    #: fallback: attribute-call method name (used when unresolvable)
    method: Optional[str] = None
    #: receiver identifiers accepted for the method fallback
    receiver_hints: Tuple[str, ...] = ()
    #: positional argument indices to inspect (after any self offset)
    positions: Tuple[int, ...] = ()
    keywords: Tuple[str, ...] = ()
    all_args: bool = False


SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec(
        kind="event timestamp 'EventQueue.push'",
        suffixes=("EventQueue.push",),
        method="push",
        receiver_hints=(
            "queue",
            "_queue",
            "events",
            "_events",
            "event_queue",
            "eventqueue",
        ),
        positions=(0,),
        keywords=("time",),
    ),
    SinkSpec(
        kind="unit-seed derivation 'derive_unit_seed'",
        suffixes=("derive_unit_seed",),
        all_args=True,
    ),
    SinkSpec(
        kind="work-unit construction 'WorkUnit'",
        suffixes=("WorkUnit",),
        positions=(0, 1, 2),
        keywords=("config", "seed", "schedulers"),
    ),
    SinkSpec(
        kind="cache fingerprint 'fingerprint'",
        suffixes=("WorkUnit.fingerprint",),
        method="fingerprint",
        receiver_hints=("unit", "work_unit", "self"),
        all_args=True,
    ),
    SinkSpec(
        kind="cache construction 'ResultCache'",
        suffixes=("ResultCache",),
        all_args=True,
    ),
    SinkSpec(
        kind="cache key 'canonical_config'",
        suffixes=("canonical_config",),
        all_args=True,
    ),
    SinkSpec(
        kind="worker fan-out 'run_grid'",
        suffixes=("run_grid",),
        positions=(0,),
        keywords=("units",),
    ),
    SinkSpec(
        kind="worker submission 'Executor.submit'",
        method="submit",
        receiver_hints=("executor", "pool", "_executor", "_pool"),
        all_args=True,
    ),
    SinkSpec(
        kind="worker-payload store 'ResultCache.store'",
        suffixes=("ResultCache.store",),
        method="store",
        receiver_hints=("cache", "_cache", "result_cache"),
        all_args=True,
    ),
)


def _receiver_identifier(node: ast.Call) -> Optional[str]:
    if not isinstance(node.func, ast.Attribute):
        return None
    parts = dotted_name(node.func.value)
    if parts is None:
        return None
    return parts[-1]


def match_sink(node: ast.Call, resolved: Optional[str]) -> Optional[SinkSpec]:
    """The sink spec this call matches, if any."""
    for spec in SINKS:
        if resolved is not None and any(
            resolved == suffix or resolved.endswith("." + suffix)
            for suffix in spec.suffixes
        ):
            return spec
        if spec.method is not None and isinstance(node.func, ast.Attribute):
            if node.func.attr != spec.method:
                continue
            receiver = _receiver_identifier(node)
            if receiver is not None and receiver.lower() in spec.receiver_hints:
                return spec
    return None


def tainted_sink_args(
    spec: SinkSpec, call_args: CallArgs
) -> List[Tuple[str, Taint]]:
    """(position label, taint) pairs for the spec's inspected arguments."""
    hits: List[Tuple[str, Taint]] = []
    inspected: List[Tuple[str, frozenset]] = []
    if spec.all_args:
        for pos, taints in enumerate(call_args.positional):
            inspected.append((f"argument {pos + 1}", taints))
        for name, taints in call_args.keywords.items():
            inspected.append((f"argument {name!r}", taints))
    else:
        for pos in spec.positions:
            if pos < len(call_args.positional):
                inspected.append((f"argument {pos + 1}", call_args.positional[pos]))
        for name in spec.keywords:
            if name in call_args.keywords:
                inspected.append((f"argument {name!r}", call_args.keywords[name]))
    for label, taints in inspected:
        for taint in sorted(
            concrete(taints), key=lambda t: (t.kind, t.path, t.line, t.origin)
        ):
            hits.append((label, taint))
    return hits


# ----------------------------------------------------------------------
# Deep analysis driver
# ----------------------------------------------------------------------
@dataclass
class DeepReport:
    """Findings + suppression count of one deep analysis."""

    findings: List[Finding]
    suppressed: int
    files_checked: int


def analyze_project(project: Project) -> DeepReport:
    """Run taint + worker-purity analysis, applying per-line pragmas."""
    engine = TaintEngine(project)
    engine.run()

    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str, str, int, str]] = set()

    def observer(
        node: ast.Call,
        resolved: Optional[str],
        func: FunctionInfo,
        call_args: CallArgs,
    ) -> None:
        spec = match_sink(node, resolved)
        if spec is None:
            return
        mod = project.module_for_function(func)
        for label, taint in tainted_sink_args(spec, call_args):
            code = SOURCE_RULES.get(taint.kind)
            if code is None:
                continue
            key = (mod.path, node.lineno, code, taint.path, taint.line, spec.kind)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=code,
                    message=(
                        f"{describe_taint(taint)} reaches {spec.kind} "
                        f"({label}) in '{func.qualname}'"
                    ),
                )
            )

    engine.report(observer)
    findings.extend(check_worker_purity(project))

    # Pragma filtering at the finding (sink) line.
    pragmas: Dict[str, PragmaIndex] = {}
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        index = pragmas.get(finding.path)
        if index is None:
            mod = next(
                (m for m in project.modules.values() if m.path == finding.path),
                None,
            )
            index = PragmaIndex(mod.source if mod is not None else "")
            pragmas[finding.path] = index
        if index.skip_file or index.suppresses(finding.line, finding.code):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return DeepReport(
        findings=kept, suppressed=suppressed, files_checked=len(project.modules)
    )


# ----------------------------------------------------------------------
# SIM106 — worker purity
# ----------------------------------------------------------------------
def check_worker_purity(project: Project) -> List[Finding]:
    """Verify every callable fanned out by ``run_grid`` is pool-safe."""
    findings: List[Finding] = []
    mutated_globals = project.mutable_global_mutators()

    for func in project.functions.values():
        mod = project.module_for_function(func)
        cls = project.class_for_function(func)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = project.resolve_expr(node.func, mod, cls=cls)
            if resolved is None or not (
                resolved == "run_grid" or resolved.endswith(".run_grid")
            ):
                continue
            worker = _run_unit_argument(node)
            if worker is None:
                # No explicit run_unit: the fan-out uses run_grid's own
                # default worker.  Audit the sibling ``execute_unit`` in
                # the module that defines the resolved run_grid, so call
                # sites like experiments/chaos.py::run_chaos get the same
                # purity coverage as explicit-worker calls.
                findings.extend(
                    _check_default_worker(project, mod.path, node, resolved, mutated_globals)
                )
                continue
            findings.extend(
                _check_worker_callable(
                    project, mod.path, node, worker, mutated_globals, cls=cls
                )
            )
    return findings


def _check_default_worker(
    project: Project,
    path: str,
    call: ast.Call,
    resolved: str,
    mutated_globals: Set[Tuple[str, str]],
) -> List[Finding]:
    """Purity-audit the default worker of a ``run_unit``-less fan-out.

    ``run_grid``'s default worker is its module-level sibling
    ``execute_unit``; resolve it through the resolved ``run_grid`` target
    and run the transitive purity audit anchored at the call site.  When
    the sibling is not in the analyzed tree (partial lints, fixture
    projects without one) there is nothing to audit — stay silent rather
    than inventing an unresolvable-worker finding.
    """
    grid_fn = project.function_for(resolved)
    if grid_fn is None:
        return []
    grid_mod = project.module_for_function(grid_fn)
    default = project.function_for(f"{grid_mod.name}.execute_unit")
    if default is None or default.cls is not None:
        return []
    return purity_violations(
        project, default, mutated_globals, anchor=call, path=path
    )


def _run_unit_argument(node: ast.Call) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == "run_unit":
            return kw.value
    # run_grid(units, parallel, cache_dir, cache, retries, run_unit, ...)
    if len(node.args) >= 6:
        return node.args[5]
    # A lambda anywhere in the call is never pool-safe; catch it even in
    # the wrong position rather than silently letting it through.
    for arg in node.args:
        if isinstance(arg, ast.Lambda):
            return arg
    return None


def _check_worker_callable(
    project: Project,
    path: str,
    call: ast.Call,
    worker: ast.expr,
    mutated_globals: Set[Tuple[str, str]],
    cls: Optional["ClassInfo"] = None,
) -> List[Finding]:
    def finding(message: str, node: Optional[ast.AST] = None) -> Finding:
        anchor = node if node is not None else call
        return Finding(
            path=path,
            line=getattr(anchor, "lineno", call.lineno),
            col=getattr(anchor, "col_offset", call.col_offset),
            code=WORKER_PURITY_CODE,
            message=message,
        )

    if isinstance(worker, ast.Lambda):
        return [
            finding(
                "lambda passed to run_grid; lambdas are not picklable and "
                "cannot cross the process-pool boundary — define a "
                "module-level function instead",
                worker,
            )
        ]
    parts = dotted_name(worker)
    if parts is None:
        return [
            finding(
                "run_unit callable is a dynamic expression; run_grid "
                "workers must be module-level, picklable functions"
            )
        ]
    mod = next((m for m in project.modules.values() if m.path == path), None)
    resolved = (
        project.resolve_expr(worker, mod, cls=cls) if mod is not None else None
    )
    target = project.function_for(resolved) if resolved else None
    if target is None:
        return [
            finding(
                f"run_unit callable '{'.'.join(parts)}' does not resolve to "
                "a module-level function in the analyzed tree; workers "
                "must be module-level, picklable functions"
            )
        ]
    if target.cls is not None:
        return [
            finding(
                f"run_unit callable '{target.qualname}' is a method; bound "
                "methods drag their instance across the pool boundary — "
                "use a module-level function"
            )
        ]
    return purity_violations(project, target, mutated_globals, anchor=call, path=path)


def purity_violations(
    project: Project,
    entry: FunctionInfo,
    mutated_globals: Set[Tuple[str, str]],
    anchor: ast.AST,
    path: str,
    max_depth: int = 8,
) -> List[Finding]:
    """Transitive purity audit of a worker entry point.

    Flags reads of mutable module globals that some project function
    mutates at runtime, and any ``global`` rebinding, anywhere in the
    call closure of ``entry`` (bounded BFS over resolvable calls).
    """
    findings: List[Finding] = []
    visited: Set[str] = set()
    frontier: List[Tuple[FunctionInfo, int]] = [(entry, 0)]
    while frontier:
        func, depth = frontier.pop()
        if func.full_name in visited or depth > max_depth:
            continue
        visited.add(func.full_name)
        mod = project.module_for_function(func)
        cls = project.class_for_function(func)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Global):
                findings.append(
                    Finding(
                        path=path,
                        line=getattr(anchor, "lineno", 1),
                        col=getattr(anchor, "col_offset", 0),
                        code=WORKER_PURITY_CODE,
                        message=(
                            f"worker '{entry.qualname}' transitively rebinds "
                            f"module global(s) {', '.join(node.names)} in "
                            f"'{func.full_name}'; workers must not mutate "
                            "shared module state"
                        ),
                    )
                )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                key = (mod.name, node.id)
                if key in mutated_globals and not node.id.isupper():
                    findings.append(
                        Finding(
                            path=path,
                            line=getattr(anchor, "lineno", 1),
                            col=getattr(anchor, "col_offset", 0),
                            code=WORKER_PURITY_CODE,
                            message=(
                                f"worker '{entry.qualname}' transitively "
                                f"reads mutable module global '{node.id}' "
                                f"(mutated at runtime; see {mod.path}) in "
                                f"'{func.full_name}' — fork-time state may "
                                "differ across workers"
                            ),
                        )
                    )
            elif isinstance(node, ast.Call):
                resolved = project.resolve_expr(node.func, mod, cls=cls)
                callee = project.function_for(resolved) if resolved else None
                if callee is not None and callee.full_name not in visited:
                    frontier.append((callee, depth + 1))
    # Deduplicate repeated reads of the same global along the closure.
    unique: Dict[Tuple[str, int, str], Finding] = {}
    for f in findings:
        unique.setdefault((f.path, f.line, f.message), f)
    return list(unique.values())


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def deep_lint_paths(paths: Sequence[str]) -> DeepReport:
    """Whole-program SIM101-SIM106 analysis over ``paths``."""
    project = build_project(paths)
    return analyze_project(project)
