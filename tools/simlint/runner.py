"""File walking, rule dispatch, pragma filtering, and report formatting."""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from tools.simlint.findings import Finding, PragmaIndex
from tools.simlint.rules import ALL_RULES, RULES_BY_CODE, LintContext, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.simlint.hotpaths import HotPathRegistry
    from tools.simlint.units import UnitsRegistry


class SimlintUsageError(Exception):
    """Bad invocation: unknown rule code, unreadable path, syntax error."""


def FINDING_ORDER(finding: Finding) -> Tuple[str, int, str, int]:
    """The canonical finding sort key: ``(path, line, rule, col)``.

    Rule code sorts *before* column so ``--json`` output — and therefore
    baseline diffs — are stable across filesystems and Python versions
    even when two rules fire at different columns of the same line.
    """
    return (finding.path, finding.line, finding.code, finding.col)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        if self.clean:
            summary = f"simlint: clean ({self.files_checked} files"
        else:
            summary = (
                f"simlint: {len(self.findings)} finding(s) "
                f"({self.files_checked} files"
            )
        if self.suppressed:
            summary += f", {self.suppressed} suppressed by pragma"
        summary += ")"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        # Schema version 2: findings carry a "layer" field (file / deep /
        # perf / units) so consumers can split the merged stream.
        return json.dumps(
            {
                "version": 2,
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "findings": [finding.to_dict() for finding in self.findings],
            },
            indent=2,
            sort_keys=True,
        )


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[Rule, ...]:
    """Resolve ``--select`` / ``--ignore`` code lists to rule instances."""
    codes = [code.strip().upper() for code in (select or []) if code.strip()]
    ignored = {code.strip().upper() for code in (ignore or []) if code.strip()}
    for code in list(codes) + sorted(ignored):
        if code not in RULES_BY_CODE:
            raise SimlintUsageError(
                f"unknown rule code {code!r}; known: {sorted(RULES_BY_CODE)}"
            )
    rules = (
        tuple(RULES_BY_CODE[code] for code in codes) if codes else ALL_RULES
    )
    return tuple(rule for rule in rules if rule.code not in ignored)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] = ALL_RULES,
) -> LintReport:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives rule scoping (e.g. SIM001 only fires under
    ``repro/simulator``), so fixture tests pass a representative fake path.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise SimlintUsageError(f"{path}: syntax error: {exc}") from exc
    return _lint_parsed(source, tree, path, rules)


def _lint_parsed(
    source: str,
    tree: ast.Module,
    path: str,
    rules: Sequence[Rule],
) -> LintReport:
    """Per-file rules over an already-parsed module (no re-parse)."""
    normalized = path.replace("\\", "/")
    report = LintReport(files_checked=1)
    pragmas = PragmaIndex(source)
    if pragmas.skip_file:
        return report
    ctx = LintContext(path=normalized, tree=tree)
    for rule in rules:
        if not rule.applies(normalized):
            continue
        for finding in rule.check(ctx):
            if pragmas.suppresses(finding.line, finding.code):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort(key=FINDING_ORDER)
    return report


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.is_file():
            out.append(path)
        else:
            raise SimlintUsageError(f"no such file or directory: {raw}")
    return out


def lint_paths_layers(
    paths: Sequence[str],
    rules: Sequence[Rule] = ALL_RULES,
    deep: bool = False,
    perf: bool = False,
    units: bool = False,
    registry: Optional["HotPathRegistry"] = None,
    units_registry: Optional["UnitsRegistry"] = None,
) -> LintReport:
    """Run any combination of simlint's layers in one unified pass.

    Every file is parsed exactly once: the per-file rules run on the
    parsed tree, and when ``deep`` (SIM101-SIM106), ``perf``
    (SIM201-SIM207), or ``units`` (SIM301-SIM308) is requested the same
    parsed modules are assembled into one shared
    :class:`~tools.simlint.callgraph.Project` — not re-read from disk
    per layer.  Findings from all layers land in one stream sorted once
    by the canonical ``(path, line, rule, col)`` key, so ``--json``
    consumers and the baselines see a stable cross-layer order.

    ``registry`` overrides the shipped hot-path registry (fixture tests);
    it is consulted by the ``perf`` and ``units`` layers (SIM307).
    ``units_registry`` overrides the shipped SIM308 annotated-module set.
    """
    from tools.simlint.callgraph import ModuleInfo, parse_module

    report = LintReport()
    modules: List[ModuleInfo] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        path = file_path.as_posix()
        try:
            mod = parse_module(file_path, source)
        except SyntaxError as exc:
            raise SimlintUsageError(f"{path}: syntax error: {exc}") from exc
        modules.append(mod)
        report.extend(_lint_parsed(source, mod.tree, path, rules))

    if deep or perf or units:
        from tools.simlint.callgraph import Project

        project = Project(modules)
        if deep:
            from tools.simlint.dataflow import analyze_project

            deep_report = analyze_project(project)
            report.findings.extend(deep_report.findings)
            report.suppressed += deep_report.suppressed
        if perf:
            from tools.simlint.perfrules import perf_lint_project

            perf_report = perf_lint_project(project, registry=registry)
            report.findings.extend(perf_report.findings)
            report.suppressed += perf_report.suppressed
        if units:
            from tools.simlint.units import units_lint_project

            units_report = units_lint_project(
                project, registry=units_registry, hot_registry=registry
            )
            report.findings.extend(units_report.findings)
            report.suppressed += units_report.suppressed

    report.findings.sort(key=FINDING_ORDER)
    return report


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] = ALL_RULES,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (per-file rules only)."""
    return lint_paths_layers(paths, rules=rules)


def lint_paths_deep(
    paths: Sequence[str],
    rules: Sequence[Rule] = ALL_RULES,
) -> LintReport:
    """Per-file rules plus the whole-program SIM101-SIM106 layer."""
    return lint_paths_layers(paths, rules=rules, deep=True)
