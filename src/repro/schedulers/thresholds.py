"""Exponentially spaced priority thresholds.

Both the TBS-based baselines (Aalo, Stream) and Gurita map a scalar score
(accumulated bytes sent, or the blocking effect Ψ) to one of K priority
queues by comparing it to exponentially spaced thresholds — the spacing
recommended by Aalo (paper §IV.B, "These thresholds are determined using
exponentially-spaced as recommended by [5]").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List

from repro.errors import SchedulerError

#: Aalo's first queue boundary: 10 MB.
DEFAULT_FIRST_THRESHOLD = 10e6
#: Aalo's multiplier between successive queue boundaries.
DEFAULT_THRESHOLD_BASE = 10.0


@dataclass(frozen=True)
class ExponentialThresholds:
    """K priority classes split by boundaries ``first * base**i``.

    Class 0 (highest priority) holds scores below ``first``; class ``K-1``
    (lowest) holds scores at or above ``first * base**(K-2)``.
    """

    num_classes: int
    first: float = DEFAULT_FIRST_THRESHOLD
    base: float = DEFAULT_THRESHOLD_BASE

    def __post_init__(self) -> None:
        if self.num_classes < 1:
            raise SchedulerError("need at least one priority class")
        if self.first <= 0 or self.base <= 1:
            raise SchedulerError(
                f"thresholds need first > 0 and base > 1, "
                f"got first={self.first}, base={self.base}"
            )

    @property
    def boundaries(self) -> List[float]:
        """The K-1 class boundaries, ascending."""
        return [self.first * self.base**i for i in range(self.num_classes - 1)]

    def class_of(self, score: float) -> int:
        """Priority class for a score (0 = highest priority)."""
        return bisect_right(self.boundaries, score)

    def demoted(self, score: float, floor_class: int) -> int:
        """Class for a score, never better (smaller) than ``floor_class``.

        Models the paper's rule that a deprioritized job's new coflows
        inherit at least the job's current (worse) priority.
        """
        return max(self.class_of(score), floor_class)
