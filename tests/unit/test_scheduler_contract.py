"""Cross-scheduler conformance suite: the SchedulerPolicy contract.

Every test is parameterized over the full registry, so a newly registered
policy is automatically held to the same contract as the paper's
comparators: honest registration metadata, fresh state per instantiation,
deterministic replays, sane allocation requests, and a priority-delta
protocol that matches its ``reports_priority_deltas`` declaration.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
)
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.workloads.generator import synthesize_workload

ALL_SCHEDULERS = tuple(available_schedulers())

NUM_HOSTS = 8


def small_workload():
    """A small multi-stage workload, rebuilt identically per call."""
    return synthesize_workload(
        num_jobs=6,
        num_hosts=NUM_HOSTS,
        structure="fb-tao",
        seed=11,
        arrival_mode="uniform",
    )


def run_once(name: str):
    return simulate(
        BigSwitchTopology(num_hosts=NUM_HOSTS),
        make_scheduler(name),
        small_workload(),
    )


@pytest.fixture(params=ALL_SCHEDULERS)
def name(request) -> str:
    return request.param


def test_registry_covers_new_comparators():
    """The gap-harness comparators are first-class registry citizens."""
    assert {"sg-dag", "lp-order"} <= set(ALL_SCHEDULERS)
    assert len(ALL_SCHEDULERS) >= 7


class TestRegistration:
    def test_factory_returns_policy_with_matching_name(self, name):
        policy = make_scheduler(name)
        assert isinstance(policy, SchedulerPolicy)
        assert policy.name == name

    def test_fresh_instance_and_state_per_make(self, name):
        first, second = make_scheduler(name), make_scheduler(name)
        assert first is not second
        assert first._priority_delta is not second._priority_delta
        assert first.context is None

    def test_update_interval_declaration(self, name):
        interval = make_scheduler(name).update_interval
        assert interval is None or (
            isinstance(interval, float) and interval >= 0.0
        )


class TestPriorityDeltaProtocol:
    def test_consume_matches_declaration(self, name):
        policy = make_scheduler(name)
        delta = policy.consume_priority_delta()
        if policy.reports_priority_deltas:
            assert delta == frozenset()
        else:
            assert delta is None

    def test_noted_changes_round_trip_and_clear(self, name):
        policy = make_scheduler(name)
        policy._note_priority_change(7)
        policy._note_priority_change(9)
        delta = policy.consume_priority_delta()
        if policy.reports_priority_deltas:
            assert delta == frozenset({7, 9})
            # The accumulator is consumed exactly once per round.
            assert policy.consume_priority_delta() == frozenset()
        else:
            assert delta is None
            assert not policy._priority_delta


class TestDeterminism:
    def test_identical_replays_are_bit_identical(self, name):
        first, second = run_once(name), run_once(name)
        jcts_first = {
            job.job_id: job.completion_time() for job in first.jobs
        }
        jcts_second = {
            job.job_id: job.completion_time() for job in second.jobs
        }
        assert jcts_first == jcts_second

    def test_workload_completes(self, name):
        result = run_once(name)
        assert all(
            job.completion_time() is not None for job in result.jobs
        ), f"{name} left jobs unfinished"


class TestAllocationRequests:
    def test_requests_are_wellformed_throughout_a_run(self, name):
        policy = make_scheduler(name)
        captured: List[AllocationRequest] = []
        inner = policy.allocation

        def spy(active_flows, now):
            request = inner(active_flows, now)
            captured.append(request)
            if request.mode is not AllocationMode.MAXMIN:
                active_ids = {flow.flow_id for flow in active_flows}
                assert set(request.priorities) <= active_ids, (
                    f"{name} assigned priorities to inactive flows"
                )
                assert all(
                    0 <= cls < request.num_classes
                    for cls in request.priorities.values()
                ), f"{name} emitted an out-of-range priority class"
            return request

        policy.allocation = spy  # instance attribute shadows the method
        simulate(
            BigSwitchTopology(num_hosts=NUM_HOSTS),
            policy,
            small_workload(),
        )
        assert captured, f"{name} was never asked for an allocation"
        for request in captured:
            assert isinstance(request, AllocationRequest)
            assert 1 <= request.num_classes <= MAX_SWITCH_CLASSES
